#include "common/workspace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/check.hpp"

namespace tucker {

namespace {

// Smallest arena block: big enough that the tiny frames of the unblocked
// QR path never trigger a second allocation.
constexpr std::size_t kMinBlock = std::size_t{1} << 16;  // 64 KiB
constexpr std::size_t kAlign = 64;

}  // namespace

Workspace& Workspace::local() {
  static thread_local Workspace ws;
  return ws;
}

void* Workspace::get_bytes(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  for (;;) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::uintptr_t p = (base + cur_off_ + kAlign - 1) & ~(kAlign - 1);
      if (p + bytes <= base + b.size) {
        cur_off_ = static_cast<std::size_t>(p + bytes - base);
        // High-water bookkeeping: bytes_in_use() walks the (logarithmically
        // few) blocks below the bump block, so this stays O(log reserved).
        const std::size_t used = bytes_in_use();
        if (used > high_water_) high_water_ = used;
        if (used > open_peak_) open_peak_ = used;
        return reinterpret_cast<void*>(p);
      }
      // This block is exhausted for the current frame; spill into the next
      // (existing or new) one. The skipped tail stays reserved and becomes
      // usable again once the frame rewinds.
      ++cur_block_;
      cur_off_ = 0;
      continue;
    }
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t want =
        std::max({bytes + kAlign, kMinBlock, 2 * prev});
    blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
    cur_block_ = blocks_.size() - 1;
    cur_off_ = 0;
  }
}

// Overwrites everything handed out after the (block, off) mark with the
// poison byte. Debug builds only: a `get` pointer held across its Frame's
// close (or across a serving-request reset()) then reads 0xDB garbage and
// fails loudly instead of seeing stale-but-plausible values.
void Workspace::poison_released(std::size_t block, std::size_t off) {
  if (blocks_.empty()) return;
  const std::size_t last = std::min(cur_block_, blocks_.size() - 1);
  for (std::size_t b = block; b <= last; ++b) {
    const std::size_t lo = (b == block) ? off : 0;
    const std::size_t hi = (b == cur_block_) ? cur_off_ : blocks_[b].size;
    if (hi > lo) std::memset(blocks_[b].data.get() + lo, kPoisonByte, hi - lo);
  }
}

void Workspace::rewind(std::size_t block, std::size_t off) {
#ifndef NDEBUG
  poison_released(block, off);
#endif
  cur_block_ = block;
  cur_off_ = off;
}

void Workspace::reset() {
  TUCKER_CHECK(frame_depth_ == 0,
               "Workspace::reset() with a Frame still open");
  rewind(0, 0);
}

void Workspace::record_region(std::string_view name, std::size_t peak) {
  auto it = region_marks_.find(name);
  if (it == region_marks_.end())
    region_marks_.emplace(std::string(name), peak);
  else if (peak > it->second)
    it->second = peak;
}

std::size_t Workspace::region_high_water(std::string_view name) const {
  auto it = region_marks_.find(name);
  return it == region_marks_.end() ? 0 : it->second;
}

void Workspace::clear_region_marks() { region_marks_.clear(); }

void Workspace::release() {
  TUCKER_CHECK(frame_depth_ == 0,
               "Workspace::release() with a Frame still open");
  for (auto& [key, entry] : stash_) entry.destroy(entry.ptr);
  stash_.clear();
  blocks_.clear();
  cur_block_ = 0;
  cur_off_ = 0;
  high_water_ = 0;
  open_peak_ = 0;
  region_marks_.clear();
}

}  // namespace tucker
