#include "common/workspace.hpp"

#include <algorithm>
#include <cstdint>

namespace tucker {

namespace {

// Smallest arena block: big enough that the tiny frames of the unblocked
// QR path never trigger a second allocation.
constexpr std::size_t kMinBlock = std::size_t{1} << 16;  // 64 KiB
constexpr std::size_t kAlign = 64;

}  // namespace

Workspace& Workspace::local() {
  static thread_local Workspace ws;
  return ws;
}

void* Workspace::get_bytes(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  for (;;) {
    if (cur_block_ < blocks_.size()) {
      Block& b = blocks_[cur_block_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::uintptr_t p = (base + cur_off_ + kAlign - 1) & ~(kAlign - 1);
      if (p + bytes <= base + b.size) {
        cur_off_ = static_cast<std::size_t>(p + bytes - base);
        // High-water bookkeeping: bytes_in_use() walks the (logarithmically
        // few) blocks below the bump block, so this stays O(log reserved).
        const std::size_t used = bytes_in_use();
        if (used > high_water_) high_water_ = used;
        if (used > open_peak_) open_peak_ = used;
        return reinterpret_cast<void*>(p);
      }
      // This block is exhausted for the current frame; spill into the next
      // (existing or new) one. The skipped tail stays reserved and becomes
      // usable again once the frame rewinds.
      ++cur_block_;
      cur_off_ = 0;
      continue;
    }
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t want =
        std::max({bytes + kAlign, kMinBlock, 2 * prev});
    blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
    cur_block_ = blocks_.size() - 1;
    cur_off_ = 0;
  }
}

void Workspace::record_region(std::string_view name, std::size_t peak) {
  auto it = region_marks_.find(name);
  if (it == region_marks_.end())
    region_marks_.emplace(std::string(name), peak);
  else if (peak > it->second)
    it->second = peak;
}

std::size_t Workspace::region_high_water(std::string_view name) const {
  auto it = region_marks_.find(name);
  return it == region_marks_.end() ? 0 : it->second;
}

void Workspace::clear_region_marks() { region_marks_.clear(); }

void Workspace::release() {
  for (auto& [key, entry] : stash_) entry.destroy(entry.ptr);
  stash_.clear();
  blocks_.clear();
  cur_block_ = 0;
  cur_off_ = 0;
  high_water_ = 0;
  open_peak_ = 0;
  region_marks_.clear();
}

}  // namespace tucker
