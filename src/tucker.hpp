#pragma once
// Umbrella header: the full public API of the tucker-qrsvd library.
//
//   #include "tucker.hpp"
//
//   using namespace tucker;
//   auto result = core::sthosvd(x, core::TruncationSpec::tolerance(1e-3),
//                               core::SvdMethod::kQr);
//
// Layer map (see README.md / DESIGN.md):
//   parallel:: shared-memory thread pool under every kernel
//   blas::    dense kernels over strided views
//   la::      factorizations and dense eigen/SVD solvers
//   mpi::     simulated MPI runtime (threads + virtual clocks)
//   tensor::  dense tensors, unfoldings, TTM, preprocessing
//   dist::    processor grids, distributed tensors and kernels
//   core::    ST-HOSVD (sequential + parallel), Tucker objects, extensions
//   stream::  out-of-core / incremental drivers over slab sources
//   serve::   long-lived batched serving layer (queue + arena workers)
//   data::    synthetic dataset generators
//   io::      binary tensor / decomposition files (flat + chunked)

#include "blas/blas1.hpp"
#include "blas/gemm.hpp"
#include "blas/matrix.hpp"
#include "blas/matview.hpp"
#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/extensions.hpp"
#include "core/par_extensions.hpp"
#include "core/par_reconstruct.hpp"
#include "core/par_sthosvd.hpp"
#include "core/sthosvd.hpp"
#include "core/truncation.hpp"
#include "core/svd_engine.hpp"
#include "core/tucker_tensor.hpp"
#include "data/synthetic_matrix.hpp"
#include "data/synthetic_tensor.hpp"
#include "dist/dist_tensor.hpp"
#include "dist/par_kernels.hpp"
#include "dist/par_preprocess.hpp"
#include "dist/processor_grid.hpp"
#include "dist/redistribute.hpp"
#include "io/chunked_tensor_io.hpp"
#include "io/dist_io.hpp"
#include "io/tensor_io.hpp"
#include "lapack/bidiag_svd.hpp"
#include "lapack/eig.hpp"
#include "lapack/householder.hpp"
#include "lapack/qr.hpp"
#include "lapack/svd.hpp"
#include "lapack/tpqrt.hpp"
#include "lapack/tridiag_eig.hpp"
#include "serve/admission.hpp"
#include "serve/model_cache.hpp"
#include "serve/queue.hpp"
#include "serve/service.hpp"
#include "simmpi/breakdown.hpp"
#include "stream/hier_svd.hpp"
#include "stream/stream_sthosvd.hpp"
#include "stream/unfolding_source.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/cost_model.hpp"
#include "simmpi/runtime.hpp"
#include "tensor/gram.hpp"
#include "tensor/prepacked.hpp"
#include "tensor/preprocess.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_lq.hpp"
#include "tensor/ttm.hpp"
