#pragma once
// Out-of-core streaming ST-HOSVD + incremental StreamingTucker.
//
// stream_sthosvd runs the paper's Alg 1 against an UnfoldingSource instead
// of a resident tensor. Modes are processed in forward (storage) order so
// the slab axis -- the last mode -- comes up last:
//
//  - For every non-trailing mode, one pipelined pass over the slabs builds
//    the mode's SVD hierarchically (per-slab LQ triangles merged up a
//    binary tree; per-slab Gram or rand-sketch accumulation for the other
//    engines), then a second pass applies the truncation TTM slab by slab,
//    spilling the shrunken tensor to a fresh chunked temp file. Spill
//    passes re-chunk: slabs widen as the tensor shrinks, keeping each near
//    the byte budget.
//  - As soon as the shrinking tensor fits the budget it is gathered and
//    the remaining modes run the classic in-memory steps (a whole-tensor
//    "slab"). A tensor that fits from the start delegates to core::sthosvd
//    outright, which is what makes the single-chunk case *bitwise* equal
//    to the in-memory QR-SVD driver.
//  - If the trailing mode is reached while still out of core, its
//    unfolding is row-split across slabs, so the dual recipe applies: TSQR
//    (tpqrt row-block annihilation) accumulates the C x C triangle R, the
//    small SVD of R^T yields singular values and right vectors V, and a
//    second pass back-projects the factor U = A V S^-1 per slab. The core
//    follows without touching the data again: U^T A = (R V S^-1)^T R.
//
// Tolerance mode uses the same per-mode budget eps^2 ||X||^2 / N as the
// in-memory driver; ||X||^2 is accumulated slab by slab during the first
// pass (mode 0 is always a column pass when N >= 2, so the threshold is
// ready before the first rank selection).
//
// StreamingTucker is the online variant (Iwen-Ong incremental hierarchical
// SVD, T-HOSVD flavor): it keeps one merged LQ triangle per non-trailing
// mode of the *raw* unfoldings plus the current decomposition, and
// append() folds a new trailing-mode block in by merging the block's
// triangles (exact), rotating the old core into the new bases, and
// re-solving only the small trailing-mode problem -- no pass over old data.
//
// Scratch discipline: per-slab work runs inside Workspace frames, and the
// driver brackets its phases with WaterRegions ("stream.svd",
// "stream.ttm") so tests assert -- rather than eyeball -- that the arena
// high-water mark stays O(slab), not O(tensor).

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/tuning.hpp"
#include "common/workspace.hpp"
#include "core/sthosvd.hpp"
#include "io/chunked_tensor_io.hpp"
#include "stream/hier_svd.hpp"
#include "stream/unfolding_source.hpp"
#include "tensor/gram.hpp"
#include "tensor/ttm.hpp"

namespace tucker::stream {

/// Knobs of the out-of-core drivers.
struct StreamOptions {
  /// Slab byte budget; 0 reads TUCKER_STREAM_CHUNK_MB.
  std::size_t chunk_bytes = 0;
  /// Directory for truncation-pass spill files; "" = $TMPDIR or /tmp.
  /// Spill files are removed as soon as the next pass supersedes them
  /// (and on scope exit either way).
  std::string spill_dir;
  /// Per-chunk sketch knobs for SvdMethod::kRand.
  core::RandSvdOptions rand;
};

namespace detail {

inline std::string spill_dir_or_default(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t != '\0')
    return t;
  return "/tmp";
}

inline std::string make_spill_path(const std::string& dir) {
  static std::atomic<unsigned> counter{0};
  return dir + "/tucker_spill_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".tkc";
}

/// Owns a spill file's lifetime: the file is removed on reset/destruction.
class SpillFile {
 public:
  SpillFile() = default;
  explicit SpillFile(std::string path) : path_(std::move(path)) {}
  SpillFile(SpillFile&& o) noexcept : path_(std::move(o.path_)) {
    o.path_.clear();
  }
  SpillFile& operator=(SpillFile&& o) noexcept {
    if (this != &o) {
      reset();
      path_ = std::move(o.path_);
      o.path_.clear();
    }
    return *this;
  }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile() { reset(); }

  void reset() {
    if (!path_.empty()) std::remove(path_.c_str());
    path_.clear();
  }
  bool empty() const { return path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Copies trailing slices of arbitrary-extent pieces into uniform output
/// slabs and streams them to a ChunkedTensorWriter. This is what lets a
/// truncation pass re-chunk: input slab extents (possibly ragged, e.g.
/// from an AppendStream) need not match the output grid.
template <class T>
class SlabRepacker {
 public:
  SlabRepacker(const std::string& path, tensor::Dims dims, index_t out_slices)
      : writer_(path, dims, out_slices),
        dims_(std::move(dims)),
        out_slices_(out_slices) {
    const index_t last = dims_.back();
    slice_elems_ = last == 0 ? 0 : tensor::num_elements(dims_) / last;
    acc_dims_ = dims_;
  }

  /// Appends one piece (same leading dims, any trailing extent).
  void push(const tensor::Tensor<T>& piece) {
    const index_t ext = piece.dim(dims_.size() - 1);
    index_t done = 0;
    while (done < ext) {
      const index_t room =
          std::min(out_slices_, dims_.back() - emitted_) - filled_;
      const index_t take = std::min(room, ext - done);
      ensure_acc();
      std::memcpy(acc_.data() + filled_ * slice_elems_,
                  piece.data() + done * slice_elems_,
                  static_cast<std::size_t>(take * slice_elems_) * sizeof(T));
      filled_ += take;
      done += take;
      if (filled_ == std::min(out_slices_, dims_.back() - emitted_)) flush();
    }
  }

  void close() {
    TUCKER_CHECK(filled_ == 0 && emitted_ == dims_.back(),
                 "SlabRepacker: closed before all slices arrived");
    writer_.close();
  }

 private:
  void ensure_acc() {
    const index_t want = std::min(out_slices_, dims_.back() - emitted_);
    if (acc_dims_.back() != want || acc_.size() != want * slice_elems_) {
      acc_dims_.back() = want;
      acc_.reshape(acc_dims_);
    }
  }
  void flush() {
    writer_.write_slab(acc_);
    emitted_ += filled_;
    filled_ = 0;
  }

  io::ChunkedTensorWriter<T> writer_;
  tensor::Dims dims_;
  tensor::Dims acc_dims_;
  tensor::Tensor<T> acc_;
  index_t out_slices_ = 0;
  index_t slice_elems_ = 0;
  index_t filled_ = 0;   // slices in acc_
  index_t emitted_ = 0;  // slices already written
};

/// Concatenates all slabs back into a resident tensor (bitwise: slabs are
/// contiguous ranges of the linear buffer).
template <class T>
tensor::Tensor<T> gather(UnfoldingSource<T>& src) {
  tensor::Tensor<T> x(src.dims());
  const index_t last = src.dims().back();
  const index_t slice_elems = last == 0 ? 0 : x.size() / last;
  tensor::Tensor<T> slab;
  for (index_t s = 0; s < src.num_slabs(); ++s) {
    src.read_slab(s, slab);
    std::memcpy(x.data() + src.slab_begin(s) * slice_elems, slab.data(),
                static_cast<std::size_t>(slab.size()) * sizeof(T));
  }
  return x;
}

/// On resident data the hierarchical engine is single-chunk, i.e. exactly
/// QR-SVD; dispatching kStream to kQr keeps that contract bitwise.
inline core::SvdMethod resident_method(core::SvdMethod m) {
  return m == core::SvdMethod::kStream ? core::SvdMethod::kQr : m;
}

/// x projected through ms[n] on every mode n < ms.size() (each ms[n] is
/// rows_out x x.dim(n)), via the usual ping-pong TTM chain.
template <class T>
tensor::Tensor<T> ttm_chain_leading(
    const tensor::Tensor<T>& x,
    const std::vector<blas::MatView<const T>>& ms) {
  TUCKER_CHECK(!ms.empty(), "ttm_chain_leading: nothing to apply");
  tensor::Tensor<T> a, b;
  tensor::Tensor<T>* slots[2] = {&a, &b};
  const tensor::Tensor<T>* cur = &x;
  int slot = 0, last = 0;
  for (std::size_t n = 0; n < ms.size(); ++n) {
    tensor::ttm_into(*cur, n, ms[n], *slots[slot]);
    cur = slots[slot];
    last = slot;
    slot ^= 1;
  }
  return std::move(*slots[last]);
}

}  // namespace detail

/// stream_sthosvd output: the classic result plus out-of-core telemetry.
template <class T>
struct StreamSthosvdResult {
  core::SthosvdResult<T> decomposition;
  /// Total slab reads across all passes (SVD + truncation + gather).
  index_t slabs_read = 0;
  /// Bytes written to spill files across all truncation passes.
  std::size_t spill_bytes = 0;
  /// The slab byte budget the run used.
  std::size_t slab_bytes = 0;
  /// Driver-thread arena peak during the run (the driver resets the
  /// thread-local high-water mark on entry, so this is per-run).
  std::size_t arena_high_water = 0;
  /// Processing position at which the shrinking tensor first fit the
  /// budget and the driver went resident (0 = delegated entirely to the
  /// in-memory driver, -1 = stayed out of core through the last mode).
  int gathered_after = -1;
};

/// Out-of-core ST-HOSVD over an UnfoldingSource. Modes are processed in
/// forward order (the slab axis must come last while out of core; see the
/// header comment). Accuracy: kQr/kStream stay on the eps*||A|| rung of
/// Theorem 1 (merge depth adds a log factor to the constant); kGram keeps
/// its sqrt(eps) floor; kRand discards at most the per-chunk energy budget
/// eps^2 ||slab||^2 / N per chunk, which sums to the global budget.
template <class T>
StreamSthosvdResult<T> stream_sthosvd(
    UnfoldingSource<T>& src, const core::TruncationSpec& spec,
    core::SvdMethod method = core::SvdMethod::kStream,
    const StreamOptions& opt = {}) {
  const std::size_t nmodes = src.dims().size();
  TUCKER_CHECK(nmodes >= 2, "stream_sthosvd: need at least two modes");
  if (spec.is_fixed_rank())
    TUCKER_CHECK(spec.ranks.size() == nmodes,
                 "stream_sthosvd: fixed-rank spec needs one rank per mode");
  const std::size_t t = nmodes - 1;
  const std::size_t budget =
      opt.chunk_bytes != 0 ? opt.chunk_bytes : tune::stream_chunk_bytes();

  StreamSthosvdResult<T> out;
  out.slab_bytes = budget;
  core::SthosvdResult<T>& res = out.decomposition;

  Workspace& ws = Workspace::local();
  ws.reset_high_water();

  // Fits from the start: gather once and delegate. This is the bitwise
  // bridge to the in-memory driver (same tensor, same threshold, same
  // kernels; kStream runs as its single-chunk self, QR-SVD).
  if (src.total_bytes() <= budget || src.num_slabs() <= 1) {
    tensor::Tensor<T> x = detail::gather(src);
    out.slabs_read = src.num_slabs();
    res = core::sthosvd(x, spec, detail::resident_method(method), {},
                        opt.rand);
    out.gathered_after = 0;
    out.arena_high_water = ws.high_water();
    return out;
  }

  res.order = core::forward_order(nmodes);
  res.mode_sigmas.resize(nmodes);
  res.ranks.assign(nmodes, 0);
  res.tucker.factors.resize(nmodes);

  // Half the budget per slab: the pipeline keeps two slabs in flight, and
  // the per-slab LQ needs an arena working copy of the slab plus kernel
  // scratch, so budget/2 slabs keep the total working set (buffers + arena
  // high-water) under 2x the budget -- the bound tests/stream_test.cpp
  // asserts. The mid-run gather uses the same threshold for the same
  // reason: the resident finish factors the whole gathered tensor.
  const std::size_t half = std::max<std::size_t>(budget / 2, 1);

  const std::string sdir = detail::spill_dir_or_default(opt.spill_dir);
  detail::SpillFile spill[2];
  int spill_slot = 0;
  std::unique_ptr<FileSource<T>> spill_src;
  UnfoldingSource<T>* cur = &src;
  tensor::Dims cur_dims = src.dims();
  tensor::Tensor<T> resident;
  bool is_resident = false;
  double threshold_sq = 0;  // set once ||X||^2 is known (end of pass 0)

  auto bytes_of = [](const tensor::Dims& d) {
    return static_cast<std::size_t>(tensor::num_elements(d)) * sizeof(T);
  };

  for (std::size_t pos = 0; pos < nmodes; ++pos) {
    const std::size_t n = pos;  // forward order
    const bool fixed = spec.is_fixed_rank();

    if (!is_resident && bytes_of(cur_dims) <= half) {
      // The shrinking tensor now fits: gather and finish in memory.
      resident = detail::gather(*cur);
      out.slabs_read += cur->num_slabs();
      is_resident = true;
      out.gathered_after = static_cast<int>(pos);
      spill_src.reset();
      spill[0].reset();
      spill[1].reset();
    }

    if (is_resident) {
      // Classic in-memory mode step, with the threshold derived from the
      // slab-accumulated ||X||^2 (not recomputed from the shrunken data).
      core::ModeSvd<T> svd = core::mode_svd(
          resident, n, detail::resident_method(method),
          fixed ? spec.ranks[n] : index_t{0}, threshold_sq, opt.rand);
      std::vector<T>& sig = res.mode_sigmas[n];
      sig.resize(svd.sigma_sq.size());
      for (std::size_t i = 0; i < sig.size(); ++i)
        sig[i] = std::sqrt(svd.sigma_sq[i]);
      const index_t r =
          fixed ? std::min(spec.ranks[n], svd.u.cols())
                : std::min(core::select_rank(svd.sigma_sq, threshold_sq),
                           svd.u.cols());
      res.ranks[n] = r;
      blas::Matrix<T> u(resident.dim(n), r);
      blas::copy(blas::MatView<const T>(
                     svd.u.view().block(0, 0, resident.dim(n), r)),
                 u.view());
      tensor::Tensor<T> next;
      tensor::ttm_into(resident, n, blas::MatView<const T>(u.view().t()),
                       next);
      resident = std::move(next);
      res.tucker.factors[n] = std::move(u);
      continue;
    }

    if (n == t) {
      // Trailing mode, still out of core: the unfolding is row-split
      // across slabs -- TSQR + back-projection (see header comment).
      const index_t rows_total = cur_dims[t];
      const index_t c = tensor::prod_before(cur_dims, t);
      blas::Matrix<T> rfac(0, 0);
      {
        Workspace::WaterRegion region(ws, "stream.svd");
        TsqrAccumulator<T> acc(c);
        SlabPipeline<T> pipe(*cur);
        for (index_t s = 0; s < pipe.total(); ++s) {
          tensor::Tensor<T>& slab = pipe.next();
          // The slab's mode-t unfolding is its whole buffer, row-major
          // (extent x c). tpqrt consumes it, which is fine: the pipeline
          // buffer is dead after this iteration.
          acc.push(tensor::unfolding_block(slab, t, 0));
        }
        rfac = std::move(acc.r());
        out.slabs_read += cur->num_slabs();
      }
      // Singular values and *right* vectors of the stacked unfolding from
      // the small factor: sigma(R) = sigma(A); left vectors of R^T are
      // right vectors of A. The C x C triangle has rank <= rows_total, so
      // when the unfolding is wide it is heavily rank-deficient; the
      // bidiagonal QR iteration loses several digits on the kept right
      // vectors under that much deflation (enough to break the U = A P
      // back-projection), while one-sided Jacobi keeps full column-wise
      // accuracy. Same asymptotic cost, so use Jacobi unconditionally here.
      auto svdt = core::svd_of_l(blas::Matrix<T>::from(blas::MatView<const T>(
                                     rfac.view().t())),
                                 core::SmallSvdBackend::kJacobi);
      std::vector<T>& sig = res.mode_sigmas[t];
      sig.resize(svdt.sigma_sq.size());
      for (std::size_t i = 0; i < sig.size(); ++i)
        sig[i] = std::sqrt(svdt.sigma_sq[i]);
      const index_t r =
          fixed ? std::min(spec.ranks[t], svdt.u.cols())
                : std::min(core::select_rank(svdt.sigma_sq, threshold_sq),
                           svdt.u.cols());
      res.ranks[t] = r;

      // P = V_r diag(1/sigma): U = A P spans the leading left subspace.
      blas::Matrix<T> p(c, r);
      for (index_t j = 0; j < r; ++j) {
        const T s = sig[static_cast<std::size_t>(j)];
        const T inv = s > T(0) ? T(1) / s : T(0);
        for (index_t i = 0; i < c; ++i) p(i, j) = svdt.u(i, j) * inv;
      }
      // Core without another data pass: U^T A = (R P)^T R.
      blas::Matrix<T> rp(c, r);
      blas::gemm(T(1), blas::MatView<const T>(rfac.view()),
                 blas::MatView<const T>(p.view()), T(0), rp.view());
      tensor::Dims core_dims = cur_dims;
      core_dims[t] = r;
      res.tucker.core = tensor::Tensor<T>(core_dims);
      blas::gemm(T(1), blas::MatView<const T>(rp.view().t()),
                 blas::MatView<const T>(rfac.view()), T(0),
                 tensor::unfolding_block(res.tucker.core, t, 0));
      // Second pass: factor rows per slab, U_s = A_s P.
      blas::Matrix<T> u(rows_total, r);
      {
        Workspace::WaterRegion region(ws, "stream.ttm");
        SlabPipeline<T> pipe(*cur);
        for (index_t s = 0; s < pipe.total(); ++s) {
          tensor::Tensor<T>& slab = pipe.next();
          blas::gemm(T(1),
                     blas::MatView<const T>(tensor::unfolding_block(
                         static_cast<const tensor::Tensor<T>&>(slab), t, 0)),
                     blas::MatView<const T>(p.view()), T(0),
                     u.view().block(cur->slab_begin(s), 0,
                                    cur->slab_extent(s), r));
        }
        out.slabs_read += cur->num_slabs();
      }
      res.tucker.factors[t] = std::move(u);
      continue;
    }

    // Non-trailing mode, out of core: hierarchical SVD pass over slabs.
    const index_t m = cur_dims[n];
    core::ModeSvd<T> svd;
    {
      Workspace::WaterRegion region(ws, "stream.svd");
      SlabPipeline<T> pipe(*cur);
      if (method == core::SvdMethod::kGram) {
        blas::Matrix<T> g(m, m);
        for (index_t s = 0; s < pipe.total(); ++s) {
          tensor::Tensor<T>& slab = pipe.next();
          if (pos == 0) res.norm_squared += slab.norm_squared();
          blas::Matrix<T> gs = tensor::gram_of_unfolding(slab, n);
          blas::axpy(m * m, T(1), gs.data(), 1, g.data(), 1);
        }
        auto eig = la::tridiag_eig(blas::MatView<const T>(g.view()));
        svd.sigma_sq.reserve(eig.lambda.size());
        for (T lam : eig.lambda) svd.sigma_sq.push_back(std::abs(lam));
        svd.u = std::move(eig.v);
      } else if (method == core::SvdMethod::kRand) {
        // Per-chunk sketch (Minster/Li/Ballard), low-rank factors merged
        // as scaled bases: L L^T accumulates sum_c U_c S_c^2 U_c^T.
        TriangleReducer<T> red(m);
        double resid_total = 0;
        for (index_t s = 0; s < pipe.total(); ++s) {
          tensor::Tensor<T>& slab = pipe.next();
          const double snorm = slab.norm_squared();
          if (pos == 0) res.norm_squared += snorm;
          // Per-chunk energy budget eps^2 ||slab||^2 / N: the chunk
          // budgets sum to the mode's global budget.
          const double chunk_thr =
              fixed ? 0.0
                    : spec.epsilon * spec.epsilon * snorm /
                          static_cast<double>(nmodes);
          auto cs = core::rand_svd(slab, n,
                                   fixed ? spec.ranks[n] : index_t{0},
                                   chunk_thr, opt.rand);
          const index_t w = cs.u.cols();
          if (cs.sigma_sq.size() > static_cast<std::size_t>(w))
            resid_total += static_cast<double>(cs.sigma_sq.back());
          blas::Matrix<T> b(m, w);
          for (index_t j = 0; j < w; ++j) {
            const T sc = std::sqrt(cs.sigma_sq[static_cast<std::size_t>(j)]);
            for (index_t i = 0; i < m; ++i) b(i, j) = cs.u(i, j) * sc;
          }
          red.push_dense(blas::MatView<const T>(b.view()));
        }
        svd = core::svd_of_l(red.reduce(), core::SmallSvdBackend::kAuto);
        // Trailing residual pseudo-entry, as rand_svd itself reports.
        svd.sigma_sq.push_back(static_cast<T>(resid_total));
      } else {  // kQr / kStream: per-slab LQ, binary merge tree
        TriangleReducer<T> red(m);
        for (index_t s = 0; s < pipe.total(); ++s) {
          tensor::Tensor<T>& slab = pipe.next();
          if (pos == 0) res.norm_squared += slab.norm_squared();
          blas::Matrix<T> l = tensor::tensor_lq(slab, n);
          red.push(blas::MatView<const T>(l.view()));
        }
        svd = core::svd_of_l(red.reduce(), core::SmallSvdBackend::kAuto);
      }
      out.slabs_read += cur->num_slabs();
    }
    if (pos == 0 && !fixed)
      threshold_sq = spec.epsilon * spec.epsilon * res.norm_squared /
                     static_cast<double>(nmodes);

    std::vector<T>& sig = res.mode_sigmas[n];
    sig.resize(svd.sigma_sq.size());
    for (std::size_t i = 0; i < sig.size(); ++i)
      sig[i] = std::sqrt(svd.sigma_sq[i]);
    const index_t r =
        fixed ? std::min(spec.ranks[n], svd.u.cols())
              : std::min(core::select_rank(svd.sigma_sq, threshold_sq),
                         svd.u.cols());
    res.ranks[n] = r;
    blas::Matrix<T> u(m, r);
    blas::copy(blas::MatView<const T>(svd.u.view().block(0, 0, m, r)),
               u.view());

    // Truncation pass: Y <- Y x_n U^T, slab in / repacked slab out. The
    // output grid is re-sized to the budget, so slabs widen as Y shrinks.
    tensor::Dims new_dims = cur_dims;
    new_dims[n] = r;
    detail::SpillFile& dst = spill[spill_slot];
    dst = detail::SpillFile(detail::make_spill_path(sdir));
    {
      Workspace::WaterRegion region(ws, "stream.ttm");
      const index_t out_slices =
          chunk_slices_for_budget<T>(new_dims, half);
      detail::SlabRepacker<T> repack(dst.path(), new_dims, out_slices);
      SlabPipeline<T> pipe(*cur);
      tensor::Tensor<T> shrunk;
      const auto ut = blas::MatView<const T>(u.view().t());
      for (index_t s = 0; s < pipe.total(); ++s) {
        tensor::Tensor<T>& slab = pipe.next();
        tensor::ttm_into(slab, n, ut, shrunk);
        repack.push(shrunk);
      }
      repack.close();
      out.slabs_read += cur->num_slabs();
      out.spill_bytes += bytes_of(new_dims);
    }
    res.tucker.factors[n] = std::move(u);

    auto next_src = std::make_unique<FileSource<T>>(dst.path());
    spill_src = std::move(next_src);
    cur = spill_src.get();
    cur_dims = new_dims;
    spill_slot ^= 1;
    spill[spill_slot].reset();  // the pass's input file is now superseded
  }

  if (is_resident) res.tucker.core = std::move(resident);
  out.arena_high_water = ws.high_water();
  return out;
}

/// Convenience: stream straight from a chunked tensor file.
template <class T>
StreamSthosvdResult<T> stream_sthosvd_file(
    const std::string& path, const core::TruncationSpec& spec,
    core::SvdMethod method = core::SvdMethod::kStream,
    const StreamOptions& opt = {}) {
  FileSource<T> src(path);
  return stream_sthosvd(src, spec, method, opt);
}

// ------------------------------------------------------ StreamingTucker

/// Online Tucker decomposition with O(core + triangles) persistent state.
///
/// build() makes two pipelined passes: (1) per non-trailing mode, merge
/// the slabs' LQ triangles of the *raw* unfoldings up a binary tree and
/// SVD the result (T-HOSVD bases: each mode's budget is eps^2 ||X||^2 / N,
/// so the classic sum-of-tails argument bounds the total error by eps);
/// (2) project every slab through the truncated bases and concatenate the
/// small projected slabs along the trailing mode, then solve the trailing
/// mode in memory. The projected tensor (prod(ranks) x I_t) must fit in
/// RAM -- that is the serving regime this class targets, where I_t (time)
/// grows but the per-step core stays small.
///
/// append(block) folds new trailing slices in WITHOUT touching old data:
/// the block's per-mode LQ triangles merge into the persistent ones
/// (exact -- the merged triangle equals the triangle of the concatenated
/// unfolding), the old core is rotated into the refreshed bases via the
/// small alignment matrices M_n = U'_n^T U_n, the new block is projected
/// directly, and only the trailing-mode SVD re-runs on the concatenation.
/// The result agrees with a from-scratch build() on the concatenated
/// stream up to the energy the old truncation discarded (<= eps ||X||),
/// which tests/stream_test.cpp checks against a rebuild.
template <class T>
class StreamingTucker {
 public:
  static StreamingTucker build(UnfoldingSource<T>& src,
                               const core::TruncationSpec& spec) {
    const tensor::Dims dims = src.dims();
    const std::size_t nmodes = dims.size();
    TUCKER_CHECK(nmodes >= 2, "StreamingTucker: need at least two modes");
    if (spec.is_fixed_rank())
      TUCKER_CHECK(spec.ranks.size() == nmodes,
                   "StreamingTucker: fixed-rank spec needs one rank per mode");
    const std::size_t t = nmodes - 1;

    StreamingTucker st;
    st.spec_ = spec;
    st.tri_.resize(nmodes);
    st.sigmas_.resize(nmodes);
    st.ranks_.assign(nmodes, 0);
    st.tk_.factors.resize(nmodes);

    // Pass 1: per-mode triangles of the raw unfoldings + ||X||^2.
    {
      std::vector<TriangleReducer<T>> red;
      red.reserve(t);
      for (std::size_t n = 0; n < t; ++n) red.emplace_back(dims[n]);
      SlabPipeline<T> pipe(src);
      for (index_t s = 0; s < pipe.total(); ++s) {
        tensor::Tensor<T>& slab = pipe.next();
        st.norm_sq_ += slab.norm_squared();
        for (std::size_t n = 0; n < t; ++n) {
          blas::Matrix<T> l = tensor::tensor_lq(slab, n);
          red[n].push(blas::MatView<const T>(l.view()));
        }
      }
      for (std::size_t n = 0; n < t; ++n) st.tri_[n] = red[n].reduce();
    }
    for (std::size_t n = 0; n < t; ++n) st.refresh_basis(n);

    // Pass 2: project every slab and concatenate along the trailing mode.
    tensor::Dims gdims = dims;
    for (std::size_t n = 0; n < t; ++n) gdims[n] = st.ranks_[n];
    tensor::Tensor<T> g(gdims);
    const index_t gslice = tensor::prod_before(gdims, t);
    {
      std::vector<blas::MatView<const T>> proj;
      proj.reserve(t);
      for (std::size_t n = 0; n < t; ++n)
        proj.push_back(
            blas::MatView<const T>(st.tk_.factors[n].view().t()));
      SlabPipeline<T> pipe(src);
      for (index_t s = 0; s < pipe.total(); ++s) {
        tensor::Tensor<T>& slab = pipe.next();
        tensor::Tensor<T> small = detail::ttm_chain_leading(slab, proj);
        std::memcpy(g.data() + src.slab_begin(s) * gslice, small.data(),
                    static_cast<std::size_t>(small.size()) * sizeof(T));
      }
    }
    st.refresh_trailing(std::move(g));
    return st;
  }

  /// Folds a block of new trailing-mode slices into the decomposition.
  void append(const tensor::Tensor<T>& block) {
    const std::size_t nmodes = tri_.size();
    const std::size_t t = nmodes - 1;
    TUCKER_CHECK(block.order() == nmodes,
                 "StreamingTucker: block order mismatch");
    for (std::size_t n = 0; n < t; ++n)
      TUCKER_CHECK(block.dim(n) == tk_.factors[n].rows(),
                   "StreamingTucker: block leading dims mismatch");
    const index_t delta = block.dim(t);
    TUCKER_CHECK(delta > 0, "StreamingTucker: empty block");
    norm_sq_ += block.norm_squared();

    // Keep the old bases around for the core rotation.
    std::vector<blas::Matrix<T>> old_u(nmodes);
    for (std::size_t n = 0; n < nmodes; ++n) old_u[n] = tk_.factors[n];
    const tensor::Dims old_core_dims = tk_.core.dims();

    // Merge the block's triangles (exact) and refresh each basis.
    for (std::size_t n = 0; n < t; ++n) {
      blas::Matrix<T> l = tensor::tensor_lq(block, n);
      merge_triangle(tri_[n], blas::MatView<const T>(l.view()));
      refresh_basis(n);
    }

    // Rotate the old compressed data into the new bases:
    // G_old = (core x_t U_t^old) x_{n<t} (U'_n^T U_n^old).
    std::vector<blas::Matrix<T>> align(t);
    std::vector<blas::MatView<const T>> align_v;
    align_v.reserve(t);
    for (std::size_t n = 0; n < t; ++n) {
      align[n] = blas::Matrix<T>(ranks_[n], old_core_dims[n]);
      blas::gemm(T(1),
                 blas::MatView<const T>(tk_.factors[n].view().t()),
                 blas::MatView<const T>(old_u[n].view()), T(0),
                 align[n].view());
      align_v.push_back(blas::MatView<const T>(align[n].view()));
    }
    tensor::Tensor<T> unfolded_t;
    tensor::ttm_into(tk_.core, t, blas::MatView<const T>(old_u[t].view()),
                     unfolded_t);
    tensor::Tensor<T> g_old = detail::ttm_chain_leading(unfolded_t, align_v);

    // Project the new block directly into the refreshed bases.
    std::vector<blas::MatView<const T>> proj;
    proj.reserve(t);
    for (std::size_t n = 0; n < t; ++n)
      proj.push_back(blas::MatView<const T>(tk_.factors[n].view().t()));
    tensor::Tensor<T> g_new = detail::ttm_chain_leading(block, proj);

    // Concatenate along the trailing mode and re-solve only that mode.
    tensor::Dims gdims = g_old.dims();
    gdims[t] += delta;
    tensor::Tensor<T> g(gdims);
    std::memcpy(g.data(), g_old.data(),
                static_cast<std::size_t>(g_old.size()) * sizeof(T));
    std::memcpy(g.data() + g_old.size(), g_new.data(),
                static_cast<std::size_t>(g_new.size()) * sizeof(T));
    refresh_trailing(std::move(g));
  }

  const core::TuckerTensor<T>& tucker() const { return tk_; }
  const std::vector<index_t>& ranks() const { return ranks_; }
  const std::vector<std::vector<T>>& mode_sigmas() const { return sigmas_; }
  double norm_squared() const { return norm_sq_; }

  /// Certified bound from the discarded tails (see
  /// SthosvdResult::estimated_relative_error; the trailing mode's sigmas
  /// are those of the projected tensor, which only tightens the bound).
  double estimated_relative_error() const {
    double tail = 0;
    for (std::size_t n = 0; n < sigmas_.size(); ++n)
      for (std::size_t i = static_cast<std::size_t>(ranks_[n]);
           i < sigmas_[n].size(); ++i)
        tail += static_cast<double>(sigmas_[n][i]) *
                static_cast<double>(sigmas_[n][i]);
    return norm_sq_ > 0 ? std::sqrt(tail / norm_sq_) : 0.0;
  }

 private:
  StreamingTucker() = default;

  double threshold_sq() const {
    return spec_.is_fixed_rank()
               ? 0.0
               : spec_.epsilon * spec_.epsilon * norm_sq_ /
                     static_cast<double>(tri_.size());
  }

  /// SVD of mode n's persistent triangle -> sigmas, rank, factor.
  void refresh_basis(std::size_t n) {
    auto svd = core::svd_of_l(tri_[n], core::SmallSvdBackend::kAuto);
    sigmas_[n].resize(svd.sigma_sq.size());
    for (std::size_t i = 0; i < sigmas_[n].size(); ++i)
      sigmas_[n][i] = std::sqrt(svd.sigma_sq[i]);
    const index_t r =
        spec_.is_fixed_rank()
            ? std::min(spec_.ranks[n], svd.u.cols())
            : std::min(core::select_rank(svd.sigma_sq, threshold_sq()),
                       svd.u.cols());
    ranks_[n] = r;
    blas::Matrix<T> u(tri_[n].rows(), r);
    blas::copy(
        blas::MatView<const T>(svd.u.view().block(0, 0, tri_[n].rows(), r)),
        u.view());
    tk_.factors[n] = std::move(u);
  }

  /// Trailing-mode QR-SVD of the projected tensor + the new core.
  void refresh_trailing(tensor::Tensor<T> g) {
    const std::size_t t = tri_.size() - 1;
    auto svd = core::qr_svd(g, t);
    sigmas_[t].resize(svd.sigma_sq.size());
    for (std::size_t i = 0; i < sigmas_[t].size(); ++i)
      sigmas_[t][i] = std::sqrt(svd.sigma_sq[i]);
    const index_t r =
        spec_.is_fixed_rank()
            ? std::min(spec_.ranks[t], svd.u.cols())
            : std::min(core::select_rank(svd.sigma_sq, threshold_sq()),
                       svd.u.cols());
    ranks_[t] = r;
    blas::Matrix<T> u(g.dim(t), r);
    blas::copy(blas::MatView<const T>(svd.u.view().block(0, 0, g.dim(t), r)),
               u.view());
    tensor::ttm_into(g, t, blas::MatView<const T>(u.view().t()), tk_.core);
    tk_.factors[t] = std::move(u);
  }

  core::TruncationSpec spec_;
  double norm_sq_ = 0;
  std::vector<blas::Matrix<T>> tri_;  // n < N-1: raw-unfolding triangles
  std::vector<std::vector<T>> sigmas_;
  std::vector<index_t> ranks_;
  core::TuckerTensor<T> tk_;
};

}  // namespace tucker::stream
