#pragma once
// UnfoldingSource: where the out-of-core drivers get their slabs.
//
// A slab is a contiguous range of trailing-mode slices (see
// io/chunked_tensor_io.hpp for why the last mode is the split axis). The
// per-mode SVD step of the streaming ST-HOSVD consumes a source slab by
// slab instead of a raw resident pointer; three implementations cover the
// three ingest shapes named in the roadmap:
//
//  - InMemorySource: chunked view over a resident tensor (testing, and the
//    bridge from the classic drivers).
//  - FileSource: slab reader over the chunked on-disk format.
//  - AppendStream: append-only in-memory stream for online updates; each
//    appended block becomes one slab, and StreamingTucker::append folds new
//    blocks into an existing decomposition.
//
// SlabPipeline overlaps slab I/O with compute. The thread pool's
// parallel_for is a blocking fan-out primitive with no single-task submit,
// so overlap comes from one dedicated I/O thread and two buffers: the
// reader fills slab k+1 while the caller computes on slab k (the compute
// side still fans its kernels out to the pool). The handed-out buffer is
// guarded by the classic depth-2 invariant: the producer may load slab p
// only once the consumer has moved past slab p-2.

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "io/chunked_tensor_io.hpp"
#include "tensor/tensor.hpp"

namespace tucker::stream {

using blas::index_t;

/// Abstract slab producer. read_slab is non-const (file sources seek); a
/// source must tolerate being read by one thread at a time, in any order.
template <class T>
class UnfoldingSource {
 public:
  virtual ~UnfoldingSource() = default;
  virtual const tensor::Dims& dims() const = 0;
  virtual index_t num_slabs() const = 0;
  /// First trailing-mode slice of slab s.
  virtual index_t slab_begin(index_t s) const = 0;
  /// Number of trailing-mode slices in slab s.
  virtual index_t slab_extent(index_t s) const = 0;
  /// Materializes slab s into `out` (reshaped to the slab's dims).
  virtual void read_slab(index_t s, tensor::Tensor<T>& out) = 0;

  index_t total_elements() const { return tensor::num_elements(dims()); }
  std::size_t total_bytes() const {
    return static_cast<std::size_t>(total_elements()) * sizeof(T);
  }
};

/// Chunked view over a resident tensor: slab s copies the contiguous range
/// of `slab_slices` trailing slices starting at s*slab_slices.
template <class T>
class InMemorySource final : public UnfoldingSource<T> {
 public:
  InMemorySource(const tensor::Tensor<T>& x, index_t slab_slices)
      : x_(&x), slab_slices_(slab_slices) {
    TUCKER_CHECK(x.order() >= 1, "InMemorySource: need at least one mode");
    TUCKER_CHECK(slab_slices > 0,
                 "InMemorySource: slab_slices must be positive");
  }

  const tensor::Dims& dims() const override { return x_->dims(); }
  index_t num_slabs() const override {
    const index_t last = x_->dims().back();
    return last == 0 ? 0 : (last + slab_slices_ - 1) / slab_slices_;
  }
  index_t slab_begin(index_t s) const override { return s * slab_slices_; }
  index_t slab_extent(index_t s) const override {
    return std::min(slab_slices_, x_->dims().back() - slab_begin(s));
  }
  void read_slab(index_t s, tensor::Tensor<T>& out) override {
    const index_t last = x_->dims().back();
    const index_t slice_elems = last == 0 ? 0 : x_->size() / last;
    tensor::Dims sdims = x_->dims();
    sdims.back() = slab_extent(s);
    out.reshape(sdims);
    std::memcpy(out.data(), x_->data() + slab_begin(s) * slice_elems,
                static_cast<std::size_t>(out.size()) * sizeof(T));
  }

 private:
  const tensor::Tensor<T>* x_;
  index_t slab_slices_;
};

/// Slab reader over the chunked on-disk format.
template <class T>
class FileSource final : public UnfoldingSource<T> {
 public:
  explicit FileSource(const std::string& path) : reader_(path) {}
  explicit FileSource(io::ChunkedTensorReader<T> reader)
      : reader_(std::move(reader)) {}

  const tensor::Dims& dims() const override { return reader_.dims(); }
  index_t num_slabs() const override { return reader_.num_slabs(); }
  index_t slab_begin(index_t s) const override {
    return reader_.slab_begin(s);
  }
  index_t slab_extent(index_t s) const override {
    return reader_.slab_extent(s);
  }
  void read_slab(index_t s, tensor::Tensor<T>& out) override {
    reader_.read_slab(s, out);
  }

 private:
  io::ChunkedTensorReader<T> reader_;
};

/// Append-only in-memory stream: blocks of trailing-mode slices arrive
/// over time and each becomes one slab. The slab grid is as-appended (slabs
/// may have different extents), which the drivers handle uniformly.
template <class T>
class AppendStream final : public UnfoldingSource<T> {
 public:
  /// `slice_dims`: the dims of the stream with trailing extent 0 (nothing
  /// appended yet).
  explicit AppendStream(tensor::Dims slice_dims) : dims_(std::move(slice_dims)) {
    TUCKER_CHECK(!dims_.empty(), "AppendStream: need at least one mode");
    dims_.back() = 0;
  }

  /// Appends one block (same leading dims, any positive trailing extent).
  void append(const tensor::Tensor<T>& block) {
    TUCKER_CHECK(block.order() == dims_.size(),
                 "AppendStream: block order mismatch");
    for (std::size_t k = 0; k + 1 < dims_.size(); ++k)
      TUCKER_CHECK(block.dim(k) == dims_[k],
                   "AppendStream: block leading dims mismatch");
    TUCKER_CHECK(block.dim(dims_.size() - 1) > 0,
                 "AppendStream: empty block");
    begins_.push_back(dims_.back());
    dims_.back() += block.dim(dims_.size() - 1);
    slabs_.push_back(block);
  }

  const tensor::Dims& dims() const override { return dims_; }
  index_t num_slabs() const override {
    return static_cast<index_t>(slabs_.size());
  }
  index_t slab_begin(index_t s) const override {
    return begins_[static_cast<std::size_t>(s)];
  }
  index_t slab_extent(index_t s) const override {
    return slabs_[static_cast<std::size_t>(s)].dim(dims_.size() - 1);
  }
  void read_slab(index_t s, tensor::Tensor<T>& out) override {
    out = slabs_[static_cast<std::size_t>(s)];
  }

 private:
  tensor::Dims dims_;
  std::vector<tensor::Tensor<T>> slabs_;
  std::vector<index_t> begins_;
};

/// Double-buffered slab prefetcher (one pass over a source, in order).
/// next() hands out slab 0, 1, ... in turn; the returned reference stays
/// valid until the following next() call. Exactly num_slabs() calls are
/// allowed per pipeline.
template <class T>
class SlabPipeline {
 public:
  explicit SlabPipeline(UnfoldingSource<T>& src)
      : src_(&src), total_(src.num_slabs()) {
    if (total_ > 0) worker_ = std::thread([this] { run(); });
  }

  ~SlabPipeline() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      abort_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  SlabPipeline(const SlabPipeline&) = delete;
  SlabPipeline& operator=(const SlabPipeline&) = delete;

  index_t total() const { return total_; }

  tensor::Tensor<T>& next() {
    std::unique_lock<std::mutex> lk(mu_);
    TUCKER_CHECK(consumed_ < total_, "SlabPipeline: all slabs consumed");
    const index_t k = consumed_;
    ++consumed_;  // releases slab k-2's buffer for the producer
    cv_.notify_all();
    cv_.wait(lk, [&] { return holds_[k % 2] == k; });
    return buf_[k % 2];
  }

 private:
  void run() {
    for (index_t p = 0; p < total_; ++p) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        // Buffer p%2 last held slab p-2; wait until the consumer is past
        // it (p <= consumed_) or has never used it (p < 2).
        cv_.wait(lk, [&] { return abort_ || p < 2 || p <= consumed_; });
        if (abort_) return;
      }
      src_->read_slab(p, buf_[p % 2]);
      {
        std::lock_guard<std::mutex> lk(mu_);
        holds_[p % 2] = p;
      }
      cv_.notify_all();
    }
  }

  UnfoldingSource<T>* src_;
  index_t total_;
  tensor::Tensor<T> buf_[2];
  index_t holds_[2] = {-1, -1};
  index_t consumed_ = 0;
  bool abort_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
};

}  // namespace tucker::stream
