#pragma once
// Incremental hierarchical SVD building blocks (Iwen & Ong,
// arXiv:1601.07010), specialized to the QR-SVD ST-HOSVD pipeline.
//
// The streaming drivers split the tensor into slabs along the *last* mode.
// Under the mode-0-fastest layout that choice buys two structural facts:
//
//  1. A slab is a contiguous range of the linear buffer, so slab I/O is
//     sequential and a slab is itself a valid tensor.
//  2. For every mode n < N-1, the slab's mode-n unfolding is a column
//     subset of the full unfolding. Since L L^T = X_(n) X_(n)^T is
//     invariant under column permutation, per-slab LQ triangles carry all
//     the information and merge *exactly*: tplqt of [L_a | L_b] yields the
//     triangle of the column-concatenated data. This is Iwen-Ong's merge
//     step expressed with the structured tpqrt kernel the paper's butterfly
//     TSQR already uses.
//
// TriangleReducer keeps a binary-counter stack of triangles (one per tree
// level, O(log C) memory) and merges equal-level neighbours as leaves
// arrive -- the sequential schedule of a binary merge tree. The last mode's
// unfolding is *row*-split across slabs instead, so it takes the TSQR dual
// (TsqrAccumulator): annihilate each slab's row block into a running
// upper-triangular R.
//
// Accuracy: each merge is one structured Householder QR, so the composed
// factorization is backward stable with a constant growing only with the
// tree depth; computed singular values stay on the eps*||A|| rung of the
// paper's Theorem 1 (tests/theorem_bounds_test.cpp asserts this, DESIGN.md
// Sec 11 gives the argument).

#include <algorithm>
#include <cstring>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/matrix.hpp"
#include "common/check.hpp"
#include "common/tuning.hpp"
#include "lapack/qr.hpp"
#include "lapack/tpqrt.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_lq.hpp"

namespace tucker::stream {

using blas::index_t;
using blas::Matrix;
using blas::MatView;

/// Binary merge tree over lower-triangular/trapezoidal LQ factors of
/// column-split pieces of one m-row unfolding. push() folds one leaf;
/// reduce() folds the remaining mixed-level stack and returns the m x m
/// lower-triangular factor of the full unfolding.
template <class T>
class TriangleReducer {
 public:
  explicit TriangleReducer(index_t m) : m_(m) {}

  index_t rows() const { return m_; }
  std::size_t pending() const { return tri_.size(); }

  /// Folds the LQ factor of one column block (m x c, c <= m, lower
  /// trapezoidal -- exactly what tensor_lq returns for a slab).
  void push(MatView<const T> l) { push_padded(pad(l)); }

  /// Folds a *dense* m x c block whose columns are scaled basis vectors
  /// (the per-chunk rand-sketch case: U_c diag(sigma_c)); it is LQ-reduced
  /// to a triangle first so the merge kernel can exploit structure.
  void push_dense(MatView<const T> b) {
    TUCKER_CHECK(b.rows() == m_ && b.cols() <= m_,
                 "TriangleReducer: dense leaf must be m x (<= m)");
    Matrix<T> t(m_, m_);
    blas::copy(b, t.view().block(0, 0, m_, b.cols()));
    std::vector<T> tau;
    la::gelqf(t.view(), tau);
    Matrix<T> l = la::extract_l<T>(t.view());
    push_padded(pad(blas::MatView<const T>(l.view())));
  }

  /// Final triangle of all pushed leaves. An empty reducer returns the
  /// zero triangle. The reducer is reset afterwards.
  Matrix<T> reduce() {
    if (tri_.empty()) return Matrix<T>(m_, m_);
    // Fold the remaining binary-counter stack top-down (newest first), the
    // same order a left-leaning binary tree would.
    while (tri_.size() >= 2) merge_top_pair();
    Matrix<T> out = std::move(tri_.back());
    tri_.clear();
    level_.clear();
    return out;
  }

 private:
  Matrix<T> pad(MatView<const T> l) {
    TUCKER_CHECK(l.rows() == m_ && l.cols() <= m_,
                 "TriangleReducer: leaf must be m x (<= m) trapezoidal");
    Matrix<T> t(m_, m_);  // zero-initialized; trapezoids pad to a triangle
    blas::copy(l, t.view().block(0, 0, m_, l.cols()));
    return t;
  }

  void push_padded(Matrix<T> t) {
    tri_.push_back(std::move(t));
    level_.push_back(0);
    // Binary-counter carry: two subtrees of equal height merge into one of
    // height + 1, keeping at most one pending triangle per level.
    while (tri_.size() >= 2 && level_[tri_.size() - 1] == level_[tri_.size() - 2])
      merge_top_pair();
  }

  void merge_top_pair() {
    // tplqt([older | newer]): annihilate the newer triangle into the older
    // one. Both operands are m x m lower triangular, so the structured
    // (half-flop) variant applies.
    Matrix<T>& dst = tri_[tri_.size() - 2];
    Matrix<T>& src = tri_.back();
    std::vector<T> tau;
    la::tplqt(dst.view(), src.view(), tau, la::Pentagon::kTriangular);
    const int lv = std::max(level_[level_.size() - 2], level_.back()) + 1;
    tri_.pop_back();
    level_.pop_back();
    level_.back() = lv;
  }

  index_t m_;
  std::vector<Matrix<T>> tri_;
  std::vector<int> level_;
};

/// Folds the LQ factor of newly arrived columns into a persistent m x m
/// lower triangle in place -- the incremental-update step of
/// StreamingTucker::append (a degenerate two-leaf merge tree).
template <class T>
void merge_triangle(Matrix<T>& dst, MatView<const T> leaf) {
  const index_t m = dst.rows();
  TUCKER_CHECK(dst.cols() == m, "merge_triangle: dst must be square");
  TUCKER_CHECK(leaf.rows() == m && leaf.cols() <= m,
               "merge_triangle: leaf must be m x (<= m)");
  Matrix<T> padded(m, m);
  blas::copy(leaf, padded.view().block(0, 0, m, leaf.cols()));
  std::vector<T> tau;
  la::tplqt(dst.view(), padded.view(), tau, la::Pentagon::kTriangular);
}

/// TSQR accumulator for the row-split case (the slab axis itself): R of
/// the row-stacked matrix [A_1; A_2; ...], each push annihilating one
/// slab's row block into the running C x C upper triangle. The block is
/// consumed (overwritten with reflector tails).
template <class T>
class TsqrAccumulator {
 public:
  explicit TsqrAccumulator(index_t cols) : r_(cols, cols) {}

  void push(MatView<T> block) {
    TUCKER_CHECK(block.cols() == r_.cols(),
                 "TsqrAccumulator: column count mismatch");
    std::vector<T> tau;
    la::tpqrt(r_.view(), block, tau, la::Pentagon::kFull);
  }

  /// The current triangular factor (valid any time; more pushes refine it).
  const Matrix<T>& r() const { return r_; }
  Matrix<T>& r() { return r_; }

 private:
  Matrix<T> r_;
};

/// Trailing-mode slices per chunk for a resident tensor under a byte
/// budget: how many last-mode slices fit in `budget_bytes` (at least 1).
template <class T>
index_t chunk_slices_for_budget(const tensor::Dims& dims,
                                std::size_t budget_bytes) {
  const index_t last = dims.back();
  if (last <= 1) return 1;
  const index_t slice_elems = tensor::num_elements(dims) / last;
  const std::size_t slice_bytes =
      static_cast<std::size_t>(slice_elems) * sizeof(T);
  if (slice_bytes == 0) return last;
  const auto fit = static_cast<index_t>(budget_bytes / slice_bytes);
  return std::clamp<index_t>(fit, 1, last);
}

/// Merged L factor of the mode-n unfolding of a *resident* tensor,
/// computed hierarchically over trailing-mode chunks of `chunk_slices`
/// slices each -- the in-memory face of the streaming engine. A single
/// chunk reduces to tensor_lq(y, n) exactly (same code path), which is
/// what makes the single-chunk == QR-SVD bitwise test possible. The slab
/// axis itself (n == N-1) is never column-split, so it falls through to
/// the direct factorization.
template <class T>
Matrix<T> chunked_unfolding_lq(const tensor::Tensor<T>& y, std::size_t n,
                               index_t chunk_slices) {
  TUCKER_CHECK(n < y.order(), "chunked_unfolding_lq: mode out of range");
  const std::size_t t = y.order() - 1;
  const index_t last = y.dim(t);
  TUCKER_CHECK(chunk_slices > 0,
               "chunked_unfolding_lq: chunk_slices must be positive");
  if (n == t || chunk_slices >= last) return tensor::tensor_lq(y, n);

  const index_t m = y.dim(n);
  const index_t slice_elems = last == 0 ? 0 : y.size() / last;
  TriangleReducer<T> red(m);
  tensor::Tensor<T> slab;
  tensor::Dims sdims = y.dims();
  for (index_t begin = 0; begin < last; begin += chunk_slices) {
    const index_t ext = std::min(chunk_slices, last - begin);
    sdims[t] = ext;
    slab.reshape(sdims);
    std::memcpy(slab.data(), y.data() + begin * slice_elems,
                static_cast<std::size_t>(ext * slice_elems) * sizeof(T));
    Matrix<T> l = tensor::tensor_lq(slab, n);
    red.push(blas::MatView<const T>(l.view()));
  }
  return red.reduce();
}

}  // namespace tucker::stream
