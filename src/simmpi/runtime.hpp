#pragma once
// Simulated MPI runtime: spawns P rank-threads and collects statistics.
//
// This substitutes for the paper's 704-node Andes cluster. Ranks execute
// the real distributed algorithms (real data movement through mailboxes,
// real local computation); time is accounted per rank as measured thread
// CPU time plus alpha-beta modeled message costs (see comm.hpp). On a
// machine with few cores the wall clock is meaningless under
// oversubscription, but each rank's simulated clock is not -- the reported
// makespan is the critical-path time the same program would take on a
// cluster with the modeled interconnect and this machine's cores.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/cost_model.hpp"

namespace tucker::mpi {

struct RankStats {
  double vtime = 0;            ///< Simulated completion time of this rank.
  double compute_seconds = 0;  ///< Measured CPU compute time.
  double comm_seconds = 0;     ///< Modeled communication + wait time.
  double comm_hidden = 0;      ///< Modeled comm hidden behind compute (overlap).
  std::map<std::string, double> region_compute;
  std::map<std::string, double> region_comm;
  std::int64_t flops = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_sent = 0;
};

struct RunStats {
  std::vector<RankStats> ranks;

  /// Simulated parallel runtime (max over ranks).
  double makespan() const;
  /// Rank with the largest simulated time (paper reports the slowest
  /// processor's breakdown).
  const RankStats& slowest() const;
  std::int64_t total_flops() const;
  std::int64_t total_bytes() const;
  std::int64_t total_messages() const;
};

class Runtime {
 public:
  /// Runs fn(world_comm) on `nprocs` rank-threads; blocks until all finish.
  static RunStats run(int nprocs, const std::function<void(Comm&)>& fn,
                      CostModel model = CostModel{});
};

}  // namespace tucker::mpi
