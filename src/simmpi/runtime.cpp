#include "simmpi/runtime.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/thread_pool.hpp"
#include "simmpi/world.hpp"

namespace tucker::mpi {

double RunStats::makespan() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.vtime);
  return m;
}

const RankStats& RunStats::slowest() const {
  TUCKER_CHECK(!ranks.empty(), "RunStats: no ranks");
  const RankStats* best = &ranks.front();
  for (const auto& r : ranks)
    if (r.vtime > best->vtime) best = &r;
  return *best;
}

std::int64_t RunStats::total_flops() const {
  std::int64_t s = 0;
  for (const auto& r : ranks) s += r.flops;
  return s;
}

std::int64_t RunStats::total_bytes() const {
  std::int64_t s = 0;
  for (const auto& r : ranks) s += r.bytes_sent;
  return s;
}

std::int64_t RunStats::total_messages() const {
  std::int64_t s = 0;
  for (const auto& r : ranks) s += r.messages_sent;
  return s;
}

RunStats Runtime::run(int nprocs, const std::function<void(Comm&)>& fn,
                      CostModel model) {
  TUCKER_CHECK(nprocs >= 1, "Runtime: need at least one rank");
  World world(nprocs, model);

  std::vector<int> identity(static_cast<std::size_t>(nprocs));
  std::iota(identity.begin(), identity.end(), 0);

  // Divide the kernel-thread budget across ranks so local kernels never
  // oversubscribe: with P ranks on a W-wide pool each rank gets
  // max(1, W/P) threads (serial whenever P >= W, the common simulation
  // case). Worker-side flops are credited back to the rank thread by
  // parallel_for, so st.flops still captures the rank's full compute.
  const int rank_width = std::max(1, parallel::max_threads() / nprocs);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&world, &fn, &identity, r, rank_width]() {
      parallel::ThreadWidthCap cap(rank_width);
      RankState& st = world.state(r);
      // The CPU timer must be created/reset on the rank's own thread.
      st.cpu_timer.reset();
      st.cpu_last = 0;
      reset_thread_flops();
      Comm comm(&world, identity, r, /*ctx=*/0);
      fn(comm);
      comm.sync_cpu_clock();
      st.flops = thread_flops();
      // A finished rank will never send again: register it as terminally
      // blocked so ranks stuck waiting on it trip the deadlock watchdog
      // (finished ranks never poll, so an all-finished world just joins).
      if (world.watchdog_enabled())
        world.watchdog_block(r, BlockedOp{BlockedOp::kFinished, 0, 0, 0});
    });
  }
  for (auto& t : threads) t.join();

  RunStats out;
  out.ranks.resize(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    const RankState& st = world.state(r);
    RankStats& dst = out.ranks[static_cast<std::size_t>(r)];
    dst.vtime = st.vtime;
    dst.compute_seconds = st.breakdown.total_compute();
    dst.comm_seconds = st.breakdown.total_comm();
    dst.comm_hidden = st.overlap_hidden;
    dst.region_compute = st.breakdown.compute();
    dst.region_comm = st.breakdown.comm();
    dst.flops = st.flops;
    dst.bytes_sent = st.bytes_sent;
    dst.messages_sent = st.messages_sent;
  }
  return out;
}

}  // namespace tucker::mpi
