#pragma once
// Communication cost model for the simulated MPI runtime.
//
// The paper analyzes algorithms in the alpha-beta-gamma model (Sec 2.1):
// a message of w words costs alpha + beta*w, and flops cost gamma each.
// Our runtime executes real computation (gamma is *measured* per thread via
// CLOCK_THREAD_CPUTIME_ID) and charges modeled alpha/beta costs for every
// message actually sent, so simulated parallel time = measured local compute
// on the critical path + modeled communication. Beta is per *byte*, so
// running in single precision halves bandwidth cost exactly as on real
// hardware.

#include <cstdint>

namespace tucker::mpi {

struct CostModel {
  /// Per-message latency, seconds. Default ~ a commodity cluster interconnect.
  double alpha = 2e-6;
  /// Per-byte transfer cost, seconds (default 1/(10 GB/s)).
  double beta = 1e-10;

  double message_cost(std::int64_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
};

}  // namespace tucker::mpi
