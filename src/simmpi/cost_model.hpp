#pragma once
// Communication cost model for the simulated MPI runtime.
//
// The paper analyzes algorithms in the alpha-beta-gamma model (Sec 2.1):
// a message of w words costs alpha + beta*w, and flops cost gamma each.
// Our runtime executes real computation (gamma is *measured* per thread via
// CLOCK_THREAD_CPUTIME_ID) and charges modeled alpha/beta costs for every
// message actually sent, so simulated parallel time = measured local compute
// on the critical path + modeled communication. Beta is per *byte*, so
// running in single precision halves bandwidth cost exactly as on real
// hardware.

#include <cstdint>

namespace tucker::mpi {

struct CostModel {
  /// Per-message latency, seconds. Default ~ a commodity cluster interconnect.
  double alpha = 2e-6;
  /// Per-byte transfer cost, seconds (default 1/(10 GB/s)).
  double beta = 1e-10;
  /// Modeled flop rate, flops/second, used only where a *deterministic*
  /// compute estimate is needed (the mode-parallel finalize scheduler ranks
  /// modes by modeled readiness; measured CPU time would make the schedule
  /// nondeterministic and break bitwise reproducibility). Default ~ one
  /// core's sustained dgemm rate; only relative magnitudes matter.
  double flop_rate = 5e9;
  /// Deadlock watchdog: abort with a per-rank stuck-op report when every
  /// rank has been blocked in a receive/wait with no matching message for
  /// this many wall-clock seconds. <= 0 disables the watchdog.
  double watchdog_seconds = 60;

  double message_cost(std::int64_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }

  /// Modeled compute cost of `flops` floating-point operations.
  /// `fp32_native` doubles the modeled rate: fp32 storage with fp32 (or
  /// fp64-register) accumulation moves half the bytes and packs twice the
  /// lanes per SIMD op, which is the same 2x the beta term already grants
  /// single-precision messages. Wide *memory* accumulation is charged at
  /// the fp64 rate by passing fp32_native = false.
  double flop_cost(std::int64_t flops, bool fp32_native = false) const {
    const double rate = fp32_native ? 2.0 * flop_rate : flop_rate;
    return static_cast<double>(flops) / rate;
  }

  /// Bytes of one collective payload of `words` words at `bytes_per_word`
  /// storage -- the hook the sketch/TTM credit tables use to price fp32
  /// (4-byte) or fp16-payload (2-byte Omega) traffic without touching the
  /// word-count helpers below.
  static std::int64_t payload_bytes(std::int64_t words,
                                    std::int64_t bytes_per_word) {
    return words * bytes_per_word;
  }

  /// Modeled cost of the runtime's allreduce (binomial reduce + binomial
  /// broadcast, see Comm::allreduce_bytes): 2*ceil(log2 p) rounds, the full
  /// buffer per round. Used by benches to print modeled communication
  /// tables next to measured breakdowns.
  double allreduce_cost(int p, std::int64_t bytes) const {
    if (p <= 1) return 0;
    int rounds = 0;
    for (int m = 1; m < p; m <<= 1) ++rounds;
    return 2.0 * rounds * message_cost(bytes);
  }

  /// Message rounds of the butterfly TSQR reduction over p ranks: log2 of
  /// the power-of-two subset, plus the fold/unfold pair when p is not a
  /// power of two (see dist::detail::butterfly_qr_reduce).
  static int tsqr_rounds(int p) {
    int pof2 = 1, rounds = 0;
    while (pof2 * 2 <= p) {
      pof2 *= 2;
      ++rounds;
    }
    return rounds + (p > pof2 ? 2 : 0);
  }

  /// Words per TSQR message: one packed w x w triangle.
  static std::int64_t tsqr_triangle_words(std::int64_t w) {
    return w * (w + 1) / 2;
  }

  /// Words each rank contributes to the sketch's slice allreduce: its
  /// m_loc-row slab of the w_new new sketch columns.
  static std::int64_t sketch_slice_words(std::int64_t m_loc,
                                         std::int64_t w_new) {
    return m_loc * w_new;
  }

  /// Words each rank contributes to the TTM truncation reduce-scatter over
  /// the mode-n fiber: its full R-row partial product over its local
  /// columns (see dist::par_ttm_truncate_into).
  static std::int64_t ttm_partial_words(std::int64_t r,
                                        std::int64_t local_cols) {
    return r * local_cols;
  }

  /// Modeled cost of the runtime's ring reduce-scatter
  /// (Comm::reduce_scatter_bytes): p-1 rounds, each moving one ~1/p block
  /// of the buffer. This is the per-mode TTM communication credit the
  /// scaling benches print next to the measured breakdown.
  double reduce_scatter_cost(int p, std::int64_t total_bytes) const {
    if (p <= 1) return 0;
    return (p - 1) * message_cost(total_bytes / p);
  }
};

}  // namespace tucker::mpi
