#include "simmpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "simmpi/world.hpp"

namespace tucker::mpi {

std::int64_t Comm::next_coll_tag() {
  // Collective traffic lives in the negative tag space; each collective
  // invocation gets 256 tags for its internal rounds. All ranks call
  // collectives in the same order on a given comm, so the sequence numbers
  // agree without coordination.
  return -((++coll_seq_) << 8);
}

const CostModel& Comm::model() const { return world_->model(); }

void Comm::sync_cpu_clock() {
  RankState& st = world_->state(group_[static_cast<std::size_t>(rank_)]);
  const double now = st.cpu_timer.seconds();
  const double delta = now - st.cpu_last;
  st.cpu_last = now;
  if (delta > 0) {
    st.vtime += delta;
    st.breakdown.charge_compute(delta);
  }
}

double Comm::vtime() const {
  return world_->state(group_[static_cast<std::size_t>(rank_)]).vtime;
}

double Comm::comm_hidden() const {
  return world_->state(group_[static_cast<std::size_t>(rank_)]).overlap_hidden;
}

RegionScope Comm::region(std::string name) {
  sync_cpu_clock();  // attribute preceding compute to the previous region
  return RegionScope(breakdown(), std::move(name));
}

Breakdown& Comm::breakdown() {
  return world_->state(group_[static_cast<std::size_t>(rank_)]).breakdown;
}

std::int64_t Comm::bytes_sent() const {
  return world_->state(group_[static_cast<std::size_t>(rank_)]).bytes_sent;
}

std::int64_t Comm::messages_sent() const {
  return world_->state(group_[static_cast<std::size_t>(rank_)]).messages_sent;
}

void Comm::send_bytes(int dst, std::int64_t tag, const void* data,
                      std::int64_t bytes) {
  TUCKER_CHECK(dst >= 0 && dst < size(), "send: destination out of range");
  TUCKER_CHECK(bytes >= 0, "send: negative byte count");
  sync_cpu_clock();
  const int me_world = group_[static_cast<std::size_t>(rank_)];
  const int dst_world = group_[static_cast<std::size_t>(dst)];
  RankState& st = world_->state(me_world);

  // Posted ops run on their shadow clock; blocking ops on the rank clock.
  double* clk = st.alt_clock ? st.alt_clock : &st.vtime;
  // Injection serialization: this message cannot enter the wire before the
  // rank's previously injected message (blocking or in flight) has left.
  const double start = std::max(*clk, st.inject_busy_until);
  const double done = start + world_->model().message_cost(bytes);
  if (!st.alt_clock) st.breakdown.charge_comm(done - *clk);
  *clk = done;
  st.inject_busy_until = done;
  st.bytes_sent += bytes;
  st.messages_sent += 1;

  Mail mail;
  mail.src_world = me_world;
  mail.ctx = ctx_;
  mail.tag = tag;
  mail.bytes.resize(static_cast<std::size_t>(bytes));
  if (bytes > 0) std::memcpy(mail.bytes.data(), data, static_cast<std::size_t>(bytes));
  mail.ready_vtime = done;

  Mailbox& box = world_->box(dst_world);
  {
    std::lock_guard<std::mutex> g(box.mutex);
    box.queue.push_back(std::move(mail));
  }
  box.cv.notify_all();
}

bool Comm::match_recv(int src_world, std::int64_t tag, void* data,
                      std::int64_t bytes, bool nonblocking,
                      double* ready_vtime) {
  const int me_world = group_[static_cast<std::size_t>(rank_)];
  Mailbox& box = world_->box(me_world);

  Mail mail;
  {
    std::unique_lock<std::mutex> lk(box.mutex);
    auto match = [&]() -> std::list<Mail>::iterator {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it)
        if (it->src_world == src_world && it->ctx == ctx_ && it->tag == tag)
          return it;
      return box.queue.end();
    };
    std::list<Mail>::iterator it = match();
    if (it == box.queue.end()) {
      if (nonblocking) return false;
      if (world_->watchdog_enabled()) {
        // Register what we are stuck on, then poll: deliveries only happen
        // from running ranks, so once every rank is registered the world
        // can no longer make progress and the watchdog fires.
        world_->watchdog_block(me_world, BlockedOp{src_world, ctx_, tag, bytes});
        while ((it = match()) == box.queue.end()) {
          box.cv.wait_for(lk, std::chrono::milliseconds(20));
          world_->watchdog_poll();
        }
        world_->watchdog_unblock(me_world);
      } else {
        box.cv.wait(lk, [&] { return (it = match()) != box.queue.end(); });
      }
    }
    mail = std::move(*it);
    box.queue.erase(it);
  }
  TUCKER_CHECK(static_cast<std::int64_t>(mail.bytes.size()) == bytes,
               "recv: message size mismatch");
  if (bytes > 0)
    std::memcpy(data, mail.bytes.data(), static_cast<std::size_t>(bytes));
  *ready_vtime = mail.ready_vtime;
  return true;
}

void Comm::recv_bytes(int src, std::int64_t tag, void* data,
                      std::int64_t bytes) {
  TUCKER_CHECK(src >= 0 && src < size(), "recv: source out of range");
  sync_cpu_clock();
  const int src_world = group_[static_cast<std::size_t>(src)];
  double ready = 0;
  match_recv(src_world, tag, data, bytes, /*nonblocking=*/false, &ready);

  // The message is usable once the sender's (virtual) transfer completes;
  // an early receiver idles until then.
  RankState& st = world_->state(group_[static_cast<std::size_t>(rank_)]);
  double* clk = st.alt_clock ? st.alt_clock : &st.vtime;
  if (ready > *clk) {
    if (!st.alt_clock) st.breakdown.charge_comm(ready - *clk);
    *clk = ready;
  }
}

Request Comm::isend_bytes(int dst, std::int64_t tag, const void* data,
                          std::int64_t bytes) {
  sync_cpu_clock();
  RankState& st = world_->state(group_[static_cast<std::size_t>(rank_)]);
  Request req;
  req.comm_ = this;
  req.kind_ = Request::Kind::kSend;
  // The hidden-credit span starts where the message can actually enter the
  // network: queueing behind the rank's own earlier injections is not
  // overlap (it would count the same wire time twice).
  const double now = st.alt_clock ? *st.alt_clock : st.vtime;
  req.post_vtime_ = std::max(now, st.inject_busy_until);

  // The payload is delivered eagerly; only its modeled time runs on the
  // request's shadow clock, surfaced at wait().
  double shadow = now;
  double* saved = st.alt_clock;
  st.alt_clock = &shadow;
  send_bytes(dst, tag, data, bytes);
  st.alt_clock = saved;
  req.completion_ = shadow;
  return req;
}

Request Comm::irecv_bytes(int src, std::int64_t tag, void* data,
                          std::int64_t bytes) {
  TUCKER_CHECK(src >= 0 && src < size(), "irecv: source out of range");
  sync_cpu_clock();
  Request req;
  req.comm_ = this;
  req.kind_ = Request::Kind::kRecv;
  req.post_vtime_ = vtime();
  req.src_world_ = group_[static_cast<std::size_t>(src)];
  req.tag_ = tag;
  req.data_ = data;
  req.bytes_ = bytes;
  return req;
}

Request Comm::iallreduce_bytes(
    void* data, std::int64_t bytes,
    const std::function<void(void*, const void*)>& combine) {
  sync_cpu_clock();
  RankState& st = world_->state(group_[static_cast<std::size_t>(rank_)]);
  Request req;
  req.comm_ = this;
  req.kind_ = Request::Kind::kColl;
  // As with isend: time spent queued behind this rank's earlier injections
  // is not credited as hidden overlap.
  req.post_vtime_ = std::max(st.vtime, st.inject_busy_until);

  // Execute the exact blocking reduction tree eagerly (the buffer is fully
  // reduced, bitwise-identical, when this returns) with its message costs
  // on a shadow clock. Combine flops are real CPU work and stay on the
  // rank clock via the sync_cpu_clock calls inside.
  double shadow = st.vtime;
  TUCKER_CHECK(st.alt_clock == nullptr,
               "iallreduce posted inside another posted operation");
  st.alt_clock = &shadow;
  allreduce_bytes(data, bytes, combine);
  world_->state(group_[static_cast<std::size_t>(rank_)]).alt_clock = nullptr;
  req.completion_ = shadow;
  return req;
}

void Comm::credit_completion(double post_vtime, double completion) {
  sync_cpu_clock();
  RankState& st = world_->state(group_[static_cast<std::size_t>(rank_)]);
  // Clock advances to max(now, completion): the operation's span that was
  // covered by compute (or by other already-credited operations) is
  // hidden; only the uncovered remainder is charged as communication.
  const double raw = std::max(0.0, completion - post_vtime);
  const double gap = completion - st.vtime;
  if (gap > 0) {
    st.breakdown.charge_comm(gap);
    st.vtime = completion;
  }
  const double hidden = raw - std::max(0.0, gap);
  if (hidden > 0) st.overlap_hidden += hidden;
}

void Request::wait() {
  if (kind_ == Kind::kNone) return;
  if (kind_ == Kind::kRecv) {
    comm_->sync_cpu_clock();
    double ready = 0;
    comm_->match_recv(src_world_, tag_, data_, bytes_, /*nonblocking=*/false,
                      &ready);
    completion_ = ready;
  }
  comm_->credit_completion(post_vtime_, completion_);
  kind_ = Kind::kNone;
}

bool Request::test() {
  if (kind_ == Kind::kNone) return true;
  if (kind_ == Kind::kRecv) {
    comm_->sync_cpu_clock();
    double ready = 0;
    if (!comm_->match_recv(src_world_, tag_, data_, bytes_,
                           /*nonblocking=*/true, &ready))
      return false;
    completion_ = ready;
  }
  comm_->credit_completion(post_vtime_, completion_);
  kind_ = Kind::kNone;
  return true;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 P) rounds of zero-byte tokens.
  const int p = size();
  if (p == 1) return;
  const std::int64_t base = next_coll_tag();
  int round = 0;
  for (int k = 1; k < p; k *= 2, ++round) {
    const int dst = (rank_ + k) % p;
    const int src = (rank_ - k % p + p) % p;
    send_bytes(dst, base - round, nullptr, 0);
    recv_bytes(src, base - round, nullptr, 0);
  }
}

void Comm::bcast_bytes(void* data, std::int64_t bytes, int root) {
  const int p = size();
  TUCKER_CHECK(root >= 0 && root < p, "bcast: root out of range");
  if (p == 1) return;
  const std::int64_t tag = next_coll_tag();
  const int vr = (rank_ - root + p) % p;

  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const int src = (rank_ - mask + p) % p;
      recv_bytes(src, tag, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int dst = (rank_ + mask) % p;
      send_bytes(dst, tag, data, bytes);
    }
    mask >>= 1;
  }
}

void Comm::allreduce_bytes(
    void* data, std::int64_t bytes,
    const std::function<void(void*, const void*)>& combine) {
  // Binomial-tree reduce to rank 0 followed by a binomial broadcast. This
  // costs 2 log P rounds (vs log P for recursive doubling) but guarantees
  // the bitwise-identical result on every rank that the MPI standard
  // requires of MPI_Allreduce -- which the Tucker algorithms rely on when
  // every rank redundantly selects truncation ranks from the reduced
  // singular values.
  const int p = size();
  if (p == 1) return;
  const std::int64_t base = next_coll_tag();
  std::vector<std::byte> tmp(static_cast<std::size_t>(bytes));

  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    if (rank_ & mask) {
      send_bytes(rank_ - mask, base - round, data, bytes);
      break;
    }
    const int src = rank_ + mask;
    if (src < p) {
      recv_bytes(src, base - round, tmp.data(), bytes);
      combine(data, tmp.data());
    }
  }
  bcast_bytes(data, bytes, 0);
}

void Comm::reduce_scatter_bytes(
    const void* data, void* recvbuf,
    const std::vector<std::int64_t>& byte_counts,
    const std::function<void(void*, const void*, std::int64_t)>& add_range) {
  // Ring reduce-scatter: P-1 steps; block b travels b+1 -> b+2 -> ... -> b,
  // each hop adding the local contribution. Bandwidth-optimal
  // ((P-1)/P of the buffer per rank) and deterministic: every block is
  // accumulated in a fixed ring order.
  const int p = size();
  TUCKER_CHECK(static_cast<int>(byte_counts.size()) == p,
               "reduce_scatter: need one count per rank");
  std::vector<std::int64_t> displs(byte_counts.size() + 1, 0);
  for (std::size_t i = 0; i < byte_counts.size(); ++i)
    displs[i + 1] = displs[i] + byte_counts[i];
  const std::int64_t total = displs.back();
  const auto me = static_cast<std::size_t>(rank_);

  if (p == 1) {
    if (total > 0) std::memcpy(recvbuf, data, static_cast<std::size_t>(total));
    return;
  }

  const std::int64_t base = next_coll_tag();
  std::vector<std::byte> working(static_cast<std::size_t>(total));
  if (total > 0)
    std::memcpy(working.data(), data, static_cast<std::size_t>(total));
  std::int64_t maxblock = 0;
  for (auto c : byte_counts) maxblock = std::max(maxblock, c);
  std::vector<std::byte> tmp(static_cast<std::size_t>(maxblock));

  const int next = (rank_ + 1) % p;
  const int prev = (rank_ - 1 + p) % p;
  for (int s = 1; s < p; ++s) {
    const auto sb = static_cast<std::size_t>((rank_ - s + 2 * p) % p);
    const auto rb = static_cast<std::size_t>((rank_ - 1 - s + 2 * p) % p);
    send_bytes(next, base - (s % 250), working.data() + displs[sb],
               byte_counts[sb]);
    recv_bytes(prev, base - (s % 250), tmp.data(), byte_counts[rb]);
    if (byte_counts[rb] > 0)
      add_range(working.data() + displs[rb], tmp.data(), byte_counts[rb]);
  }
  if (byte_counts[me] > 0)
    std::memcpy(recvbuf, working.data() + displs[me],
                static_cast<std::size_t>(byte_counts[me]));
}

void Comm::reduce_scatter_overlap_bytes(
    const void* data, void* recvbuf,
    const std::vector<std::int64_t>& byte_counts,
    const std::function<void(void*, const void*, std::int64_t)>& add_range) {
  // Overlap variant of the ring reduce-scatter: every rank isends its
  // partial of block b straight to b's owner, then folds the received
  // partials in *exactly the ring's accumulation order* -- starting from
  // rank me+1's partial, folding each subsequent rank's partial over the
  // accumulator (new += acc, the ring's add direction), own partial last.
  // Same bytes and message count as the ring, bitwise-identical result;
  // but the sends pipeline through the injection pipe instead of
  // lockstepping on each hop's arrival, and their modeled time can hide
  // behind the fold compute and behind compute preceding the call.
  const int p = size();
  TUCKER_CHECK(static_cast<int>(byte_counts.size()) == p,
               "reduce_scatter: need one count per rank");
  std::vector<std::int64_t> displs(byte_counts.size() + 1, 0);
  for (std::size_t i = 0; i < byte_counts.size(); ++i)
    displs[i + 1] = displs[i] + byte_counts[i];
  const std::int64_t total = displs.back();
  const auto me = static_cast<std::size_t>(rank_);

  if (p == 1) {
    if (total > 0) std::memcpy(recvbuf, data, static_cast<std::size_t>(total));
    return;
  }

  const std::int64_t base = next_coll_tag();
  const auto* in = static_cast<const std::byte*>(data);

  std::vector<Request> sends;
  sends.reserve(static_cast<std::size_t>(p - 1));
  for (int s = 1; s < p; ++s) {
    const auto dst = static_cast<std::size_t>((rank_ + s) % p);
    sends.push_back(isend_bytes(static_cast<int>(dst), base - 1,
                                in + displs[dst], byte_counts[dst]));
  }

  const std::int64_t mine = byte_counts[me];
  std::vector<std::byte> acc(static_cast<std::size_t>(mine));
  std::vector<std::byte> tmp(static_cast<std::size_t>(mine));
  std::byte* accp = acc.data();
  std::byte* tmpp = tmp.data();
  for (int s = 1; s < p; ++s) {
    const int src = (rank_ + s) % p;
    Request r = irecv_bytes(src, base - 1, s == 1 ? accp : tmpp, mine);
    r.wait();
    if (s > 1 && mine > 0) {
      add_range(tmpp, accp, mine);  // new partial += accumulator (ring order)
      std::swap(accp, tmpp);
    }
  }
  if (mine > 0) {
    std::memcpy(recvbuf, in + displs[me], static_cast<std::size_t>(mine));
    add_range(recvbuf, accp, mine);  // own partial last, as in the ring
  }
  waitall(sends);
}

void Comm::gatherv_bytes(const void* sendbuf, std::int64_t sendbytes,
                         void* recvbuf,
                         const std::vector<std::int64_t>& counts, int root) {
  const int p = size();
  TUCKER_CHECK(root >= 0 && root < p, "gatherv: root out of range");
  const std::int64_t tag = next_coll_tag();
  if (rank_ != root) {
    send_bytes(root, tag, sendbuf, sendbytes);
    return;
  }
  TUCKER_CHECK(static_cast<int>(counts.size()) == p,
               "gatherv: need one count per rank");
  std::int64_t offset = 0;
  for (int r = 0; r < p; ++r) {
    auto* out = static_cast<std::byte*>(recvbuf) + offset;
    if (r == root) {
      TUCKER_CHECK(counts[static_cast<std::size_t>(r)] == sendbytes,
                   "gatherv: root count mismatch");
      if (sendbytes > 0)
        std::memcpy(out, sendbuf, static_cast<std::size_t>(sendbytes));
    } else {
      recv_bytes(r, tag, out, counts[static_cast<std::size_t>(r)]);
    }
    offset += counts[static_cast<std::size_t>(r)];
  }
}

void Comm::alltoallv_bytes(const void* sendbuf,
                           const std::vector<std::int64_t>& sc,
                           const std::vector<std::int64_t>& sd, void* recvbuf,
                           const std::vector<std::int64_t>& rc,
                           const std::vector<std::int64_t>& rd) {
  const int p = size();
  const std::int64_t base = next_coll_tag();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);

  // Local block is a plain copy.
  const auto me = static_cast<std::size_t>(rank_);
  if (rc[me] > 0) {
    TUCKER_CHECK(sc[me] == rc[me], "alltoallv: self count mismatch");
    std::memcpy(out + rd[me], in + sd[me], static_cast<std::size_t>(rc[me]));
  }

  // Pairwise exchange: P-1 rounds, matching the paper's assumption of
  // P_n - 1 point-to-point messages per processor for the redistribution.
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    send_bytes(dst, base - (s % 250), in + sd[static_cast<std::size_t>(dst)],
               sc[static_cast<std::size_t>(dst)]);
    recv_bytes(src, base - (s % 250), out + rd[static_cast<std::size_t>(src)],
               rc[static_cast<std::size_t>(src)]);
  }
}

Comm Comm::split(int color, int key) {
  TUCKER_CHECK(color >= 0, "split: color must be non-negative");
  const int p = size();

  // Gather (color, key) from everyone via rank 0, then broadcast.
  std::vector<std::int64_t> mine = {color, key};
  std::vector<std::int64_t> all(static_cast<std::size_t>(2 * p));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(p), 2);
  gatherv(mine.data(), 2, all.data(), counts, 0);
  bcast(all.data(), 2 * p, 0);

  // Membership: ranks with my color, sorted by (key, old rank).
  std::vector<std::pair<std::int64_t, int>> members;  // (key, old comm rank)
  for (int r = 0; r < p; ++r) {
    if (all[static_cast<std::size_t>(2 * r)] == color)
      members.emplace_back(all[static_cast<std::size_t>(2 * r + 1)], r);
  }
  std::stable_sort(members.begin(), members.end());

  std::vector<int> group;
  int newrank = -1;
  group.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int old = members[i].second;
    group.push_back(group_[static_cast<std::size_t>(old)]);
    if (old == rank_) newrank = static_cast<int>(i);
  }
  TUCKER_CHECK(newrank >= 0, "split: caller missing from its own color");

  const std::int64_t seq = ++coll_seq_;
  const std::int64_t ctx = world_->split_context(ctx_, seq, color);
  return Comm(world_, std::move(group), newrank, ctx);
}

}  // namespace tucker::mpi
