#pragma once
// Internal shared state of the simulated MPI runtime. Not a public header.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/timer.hpp"
#include "simmpi/breakdown.hpp"
#include "simmpi/cost_model.hpp"

namespace tucker::mpi {

struct Mail {
  int src_world;             // sender's world rank
  std::int64_t ctx;          // communicator context
  std::int64_t tag;
  std::vector<std::byte> bytes;
  double ready_vtime;        // sender's virtual clock when delivery completes
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::list<Mail> queue;
};

// Per-rank state. Each rank's thread is the sole writer of its own entry;
// mailboxes are the only cross-thread channel.
struct RankState {
  double vtime = 0;                 // simulated clock
  double cpu_last = 0;              // last sampled thread CPU seconds
  ThreadCpuTimer cpu_timer;         // created on the rank's own thread
  Breakdown breakdown;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_sent = 0;
  std::int64_t flops = 0;           // filled in at teardown
};

class World {
 public:
  World(int nprocs, CostModel model)
      : model_(model), boxes_(nprocs), ranks_(nprocs) {}

  int nprocs() const { return static_cast<int>(ranks_.size()); }
  const CostModel& model() const { return model_; }
  Mailbox& box(int world_rank) { return boxes_[static_cast<std::size_t>(world_rank)]; }
  RankState& state(int world_rank) { return ranks_[static_cast<std::size_t>(world_rank)]; }

  /// Returns a context id for a split, identical for all callers that pass
  /// the same (parent_ctx, seq, color) triple.
  std::int64_t split_context(std::int64_t parent_ctx, std::int64_t seq,
                             int color) {
    std::lock_guard<std::mutex> g(ctx_mutex_);
    auto key = std::make_tuple(parent_ctx, seq, static_cast<std::int64_t>(color));
    auto [it, inserted] = ctx_registry_.try_emplace(key, next_ctx_);
    if (inserted) ++next_ctx_;
    return it->second;
  }

 private:
  CostModel model_;
  std::vector<Mailbox> boxes_;
  std::vector<RankState> ranks_;
  std::mutex ctx_mutex_;
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, std::int64_t>
      ctx_registry_;
  std::int64_t next_ctx_ = 1;
};

}  // namespace tucker::mpi
