#pragma once
// Internal shared state of the simulated MPI runtime. Not a public header.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/timer.hpp"
#include "simmpi/breakdown.hpp"
#include "simmpi/cost_model.hpp"

namespace tucker::mpi {

struct Mail {
  int src_world;             // sender's world rank
  std::int64_t ctx;          // communicator context
  std::int64_t tag;
  std::vector<std::byte> bytes;
  double ready_vtime;        // sender's virtual clock when delivery completes
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::list<Mail> queue;
};

// Per-rank state. Each rank's thread is the sole writer of its own entry;
// mailboxes are the only cross-thread channel.
struct RankState {
  double vtime = 0;                 // simulated clock
  double cpu_last = 0;              // last sampled thread CPU seconds
  ThreadCpuTimer cpu_timer;         // created on the rank's own thread
  Breakdown breakdown;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_sent = 0;
  std::int64_t flops = 0;           // filled in at teardown

  // While a nonblocking operation is being posted, communication ops
  // advance *alt_clock (the op's shadow clock) instead of vtime and skip
  // breakdown charging; the Request credits the unhidden remainder at
  // wait time (see comm.cpp). Only the rank's own thread touches this.
  double* alt_clock = nullptr;
  // Modeled communication seconds hidden behind compute or behind other
  // in-flight operations (credited at wait; see Comm docs).
  double overlap_hidden = 0;
  // Modeled time at which this rank's network injection pipe frees up.
  // Sends (blocking or posted) serialize through it: a rank cannot inject
  // message k+1 before message k has left, even when both are in flight --
  // overlap hides communication behind *compute*, never behind more of the
  // rank's own injection bandwidth.
  double inject_busy_until = 0;
};

// What a rank is currently blocked on, for the deadlock watchdog report.
// src_world == kFinished marks a rank whose function has returned: it will
// never send again, so for deadlock purposes it counts as blocked forever
// (it never polls, so an all-finished world simply tears down).
struct BlockedOp {
  static constexpr int kFinished = -2;
  int src_world = -1;
  std::int64_t ctx = 0;
  std::int64_t tag = 0;
  std::int64_t bytes = 0;
};

class World {
 public:
  World(int nprocs, CostModel model)
      : model_(model), boxes_(nprocs), ranks_(nprocs),
        wd_blocked_(static_cast<std::size_t>(nprocs)),
        wd_is_blocked_(static_cast<std::size_t>(nprocs), false) {}

  int nprocs() const { return static_cast<int>(ranks_.size()); }
  const CostModel& model() const { return model_; }
  Mailbox& box(int world_rank) { return boxes_[static_cast<std::size_t>(world_rank)]; }
  RankState& state(int world_rank) { return ranks_[static_cast<std::size_t>(world_rank)]; }

  /// Returns a context id for a split, identical for all callers that pass
  /// the same (parent_ctx, seq, color) triple.
  std::int64_t split_context(std::int64_t parent_ctx, std::int64_t seq,
                             int color) {
    std::lock_guard<std::mutex> g(ctx_mutex_);
    auto key = std::make_tuple(parent_ctx, seq, static_cast<std::int64_t>(color));
    auto [it, inserted] = ctx_registry_.try_emplace(key, next_ctx_);
    if (inserted) ++next_ctx_;
    return it->second;
  }

  // ---- deadlock watchdog -----------------------------------------------
  // A rank entering a blocking receive registers what it waits for; when
  // every rank is registered (nothing can make progress any more -- only a
  // running rank can deliver mail) and the full-block persists past the
  // model's watchdog_seconds of wall time, the first rank to notice prints
  // a per-rank stuck-op report and aborts instead of hanging ctest.

  bool watchdog_enabled() const { return model_.watchdog_seconds > 0; }

  void watchdog_block(int world_rank, const BlockedOp& op) {
    std::lock_guard<std::mutex> g(wd_mutex_);
    const auto r = static_cast<std::size_t>(world_rank);
    wd_blocked_[r] = op;
    if (!wd_is_blocked_[r]) {
      wd_is_blocked_[r] = true;
      if (++wd_count_ == nprocs())
        wd_full_since_ = std::chrono::steady_clock::now();
    }
  }

  void watchdog_unblock(int world_rank) {
    std::lock_guard<std::mutex> g(wd_mutex_);
    const auto r = static_cast<std::size_t>(world_rank);
    if (wd_is_blocked_[r]) {
      wd_is_blocked_[r] = false;
      --wd_count_;
    }
  }

  /// Called by a blocked rank after a wait timeout. Aborts (noreturn) when
  /// a full-world block has persisted past the configured limit.
  void watchdog_poll() {
    std::unique_lock<std::mutex> g(wd_mutex_);
    if (wd_count_ < nprocs()) return;
    const double stalled =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wd_full_since_)
            .count();
    if (stalled < model_.watchdog_seconds) return;
    std::fprintf(stderr,
                 "simmpi deadlock watchdog: all %d ranks blocked for %.1fs "
                 "(limit %.1fs); per-rank stuck ops:\n",
                 nprocs(), stalled, model_.watchdog_seconds);
    for (int r = 0; r < nprocs(); ++r) {
      const BlockedOp& op = wd_blocked_[static_cast<std::size_t>(r)];
      if (op.src_world == BlockedOp::kFinished)
        std::fprintf(stderr, "  rank %d: finished (will never send again)\n",
                     r);
      else
        std::fprintf(
            stderr, "  rank %d: recv(src=%d, ctx=%lld, tag=%lld, bytes=%lld)\n",
            r, op.src_world, static_cast<long long>(op.ctx),
            static_cast<long long>(op.tag), static_cast<long long>(op.bytes));
    }
    std::abort();
  }

 private:
  CostModel model_;
  std::vector<Mailbox> boxes_;
  std::vector<RankState> ranks_;
  std::mutex ctx_mutex_;
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, std::int64_t>
      ctx_registry_;
  std::int64_t next_ctx_ = 1;

  std::mutex wd_mutex_;
  std::vector<BlockedOp> wd_blocked_;
  std::vector<bool> wd_is_blocked_;
  int wd_count_ = 0;
  std::chrono::steady_clock::time_point wd_full_since_{};
};

}  // namespace tucker::mpi
