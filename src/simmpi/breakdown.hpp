#pragma once
// Per-rank time-breakdown ledger.
//
// The paper reports ST-HOSVD time split into LQ/Gram, SVD/EVD and TTM per
// mode, taken from the slowest processor (Sec 4.1). Each rank tags the
// region it is in ("mode2/LQ", ...); measured compute time and modeled
// communication time are charged to the active region. The harness then
// reports the breakdown of the rank with the largest simulated time.

#include <map>
#include <string>

namespace tucker::mpi {

class Breakdown {
 public:
  /// Sets the active region label; returns the previous label.
  std::string set_region(std::string region) {
    std::string prev = std::move(current_);
    current_ = std::move(region);
    return prev;
  }
  const std::string& region() const { return current_; }

  /// Charges `seconds` of compute time to the active region.
  void charge_compute(double seconds) {
    compute_[current_] += seconds;
    total_compute_ += seconds;
  }
  /// Charges `seconds` of modeled communication time to the active region.
  void charge_comm(double seconds) {
    comm_[current_] += seconds;
    total_comm_ += seconds;
  }

  const std::map<std::string, double>& compute() const { return compute_; }
  const std::map<std::string, double>& comm() const { return comm_; }
  double total_compute() const { return total_compute_; }
  double total_comm() const { return total_comm_; }

  /// Aggregates a region ledger by the label's top-level prefix (the text
  /// before the first '/'): "mode2/LQ" + "mode2/SVD" + "mode2/TTM" ->
  /// "mode2". This is the per-mode rollup the fig3/fig4 scaling benches
  /// print; it works on any region map (a Breakdown's own, or the
  /// RankStats copies the runtime hands to the harness).
  static std::map<std::string, double> by_prefix(
      const std::map<std::string, double>& regions) {
    std::map<std::string, double> out;
    for (const auto& [label, seconds] : regions)
      out[label.substr(0, label.find('/'))] += seconds;
    return out;
  }

  std::map<std::string, double> compute_by_prefix() const {
    return by_prefix(compute_);
  }
  std::map<std::string, double> comm_by_prefix() const {
    return by_prefix(comm_);
  }

 private:
  std::string current_ = "other";
  std::map<std::string, double> compute_;
  std::map<std::string, double> comm_;
  double total_compute_ = 0;
  double total_comm_ = 0;
};

/// RAII region scope for Breakdown.
class RegionScope {
 public:
  RegionScope(Breakdown& b, std::string region)
      : b_(b), prev_(b.set_region(std::move(region))) {}
  ~RegionScope() { b_.set_region(std::move(prev_)); }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  Breakdown& b_;
  std::string prev_;
};

}  // namespace tucker::mpi
