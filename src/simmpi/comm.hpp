#pragma once
// Simulated MPI communicator.
//
// Ranks are threads inside one process (see runtime.hpp); a Comm provides
// the MPI subset the Tucker algorithms need: blocking tagged send/recv,
// sendrecv, barrier, bcast (binomial tree), allreduce (recursive doubling
// with non-power-of-two fold), gatherv-to-root, and pairwise alltoallv --
// the same algorithms production MPI libraries use, so message and byte
// counts (and their log P latency structure) are real, not formulas.
//
// Every operation also advances the rank's *virtual clock*: measured thread
// CPU time since the last sample (compute) plus alpha+beta*bytes modeled
// costs (communication). Simulated parallel time = max over ranks of the
// final virtual clock. Point-to-point messages carry the sender's clock so
// dependency chains propagate through collectives automatically.
//
// Nonblocking ops (isend/irecv/iallreduce) return a Request handle. Data
// transfer happens eagerly (an isend's payload is in the destination
// mailbox before isend returns; an iallreduce's buffer is fully reduced
// before iallreduce returns, using the exact same binomial tree as the
// blocking allreduce, so results are bitwise-identical), but the *modeled
// time* of the operation runs on a shadow clock. At wait() the rank's
// clock advances to max(vtime, completion): compute performed between post
// and wait is credited against the communication, so the clock advances by
// max(compute, comm) instead of their sum, and the hidden portion is
// accumulated in RunStats::comm_hidden.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "simmpi/breakdown.hpp"
#include "simmpi/cost_model.hpp"

namespace tucker::mpi {

class World;
class Comm;

enum class Op { kSum, kMax, kMin };

/// Handle for a nonblocking operation. Move-only; a default-constructed or
/// already-waited Request is inactive (wait() is a no-op, test() returns
/// true). Destroying or move-assigning over a still-active Request is a
/// programming error and CHECK-fires: every posted op must be waited on so
/// its modeled time is credited exactly once.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept
      : comm_(other.comm_), kind_(other.kind_), completion_(other.completion_),
        post_vtime_(other.post_vtime_), src_world_(other.src_world_),
        tag_(other.tag_), data_(other.data_), bytes_(other.bytes_) {
    other.kind_ = Kind::kNone;
  }
  Request& operator=(Request&& other) {
    TUCKER_CHECK(kind_ == Kind::kNone,
                 "Request reused while still active (wait it first)");
    comm_ = other.comm_;
    kind_ = other.kind_;
    completion_ = other.completion_;
    post_vtime_ = other.post_vtime_;
    src_world_ = other.src_world_;
    tag_ = other.tag_;
    data_ = other.data_;
    bytes_ = other.bytes_;
    other.kind_ = Kind::kNone;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request() {
    TUCKER_CHECK(kind_ == Kind::kNone,
                 "Request destroyed while still active (wait it first)");
  }

  bool active() const { return kind_ != Kind::kNone; }

  /// Blocks until the operation completes, then credits its modeled time:
  /// the clock advances to max(vtime, completion) and the overlapped
  /// remainder is recorded as hidden. No-op on an inactive request.
  void wait();

  /// Returns true iff the operation has completed (always true for posted
  /// sends/collectives -- their transfer is eager). On completion behaves
  /// like wait(); an inactive request returns true.
  bool test();

 private:
  friend class Comm;
  enum class Kind { kNone, kSend, kColl, kRecv };

  Comm* comm_ = nullptr;
  Kind kind_ = Kind::kNone;
  double completion_ = 0;   // shadow clock at op completion (kSend/kColl)
  double post_vtime_ = 0;   // rank clock when the op was posted
  // Receive matching (kRecv): resolved at wait/test.
  int src_world_ = -1;
  std::int64_t tag_ = 0;
  void* data_ = nullptr;
  std::int64_t bytes_ = 0;
};

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  const CostModel& model() const;

  // ---- point to point -------------------------------------------------
  template <class T>
  void send(int dst, const T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, user_tag(tag), data,
               count * static_cast<std::int64_t>(sizeof(T)));
  }

  template <class T>
  void recv(int src, T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, user_tag(tag), data,
               count * static_cast<std::int64_t>(sizeof(T)));
  }

  /// Nonblocking send: the payload is copied into dst's mailbox before
  /// returning, stamped ready at post_vtime + message_cost; the sender's
  /// own clock is not advanced until wait().
  template <class T>
  Request isend(int dst, const T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    return isend_bytes(dst, user_tag(tag), data,
                       count * static_cast<std::int64_t>(sizeof(T)));
  }

  /// Nonblocking receive: records the match; the message is consumed and
  /// the clock aligned to its ready time at wait()/test().
  template <class T>
  Request irecv(int src, T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    return irecv_bytes(src, user_tag(tag), data,
                       count * static_cast<std::int64_t>(sizeof(T)));
  }

  /// Simultaneous exchange with a partner rank. Built on isend/irecv so
  /// the two directions are full-duplex: final clock is
  /// max(own send cost, partner ready time) -- identical to the historic
  /// blocking implementation, without its send-then-recv deadlock shape.
  template <class T>
  void sendrecv(int partner, const T* sendbuf, std::int64_t sendcount,
                T* recvbuf, std::int64_t recvcount, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    Request s = isend(partner, sendbuf, sendcount, tag);
    Request r = irecv(partner, recvbuf, recvcount, tag);
    r.wait();
    s.wait();
  }

  /// Waits on each request in index order (deterministic crediting).
  static void waitall(std::vector<Request>& reqs) {
    for (Request& r : reqs) r.wait();
  }

  // ---- collectives ----------------------------------------------------
  void barrier();

  template <class T>
  void bcast(T* data, std::int64_t count, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(data, count * static_cast<std::int64_t>(sizeof(T)), root);
  }

  template <class T>
  void allreduce(T* data, std::int64_t count, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    allreduce_bytes(
        data, count * static_cast<std::int64_t>(sizeof(T)),
        combine_fn<T>(count, op));
  }

  /// Nonblocking allreduce. The reduction itself runs eagerly at post time
  /// over the same binomial tree as allreduce() (bitwise-identical result,
  /// fully reduced in `data` on return), but its modeled time runs on a
  /// shadow clock credited at wait(). All ranks of the comm must post
  /// their iallreduces in the same order (standard MPI nonblocking-
  /// collective rule); the deadlock watchdog catches violations.
  template <class T>
  Request iallreduce(T* data, std::int64_t count, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    return iallreduce_bytes(
        data, count * static_cast<std::int64_t>(sizeof(T)),
        combine_fn<T>(count, op));
  }

  /// Reduce-scatter: element-wise sum of every rank's `data` (counts.total
  /// elements), after which each rank keeps only its block as given by
  /// `counts` (rank r receives counts[r] elements into recvbuf). This is
  /// the collective TuckerMPI's TTM uses to re-block the truncated mode.
  /// With overlap=true the ring is replaced by a direct pairwise exchange
  /// whose partials are folded in exactly the ring's accumulation order
  /// (bitwise-identical result, same bytes on the wire) so the p-1
  /// message costs can hide behind each other and behind prior compute.
  template <class T>
  void reduce_scatter(const T* data, T* recvbuf,
                      const std::vector<std::int64_t>& counts,
                      bool overlap = false) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    std::vector<std::int64_t> byte_counts(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
      byte_counts[i] = counts[i] * es;
    auto add_range = [](void* inout, const void* in, std::int64_t bytes) {
      T* a = static_cast<T*>(inout);
      const T* b = static_cast<const T*>(in);
      const std::int64_t n = bytes / static_cast<std::int64_t>(sizeof(T));
      for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
    };
    if (overlap)
      reduce_scatter_overlap_bytes(data, recvbuf, byte_counts, add_range);
    else
      reduce_scatter_bytes(data, recvbuf, byte_counts, add_range);
  }

  /// Gathers variable-sized blocks to `root`. counts has size() entries
  /// (in elements); recvbuf (significant at root) is laid out contiguously
  /// in rank order.
  template <class T>
  void gatherv(const T* sendbuf, std::int64_t sendcount, T* recvbuf,
               const std::vector<std::int64_t>& counts, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    std::vector<std::int64_t> byte_counts(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
      byte_counts[i] = counts[i] * es;
    gatherv_bytes(sendbuf, sendcount * es, recvbuf, byte_counts, root);
  }

  /// Personalized all-to-all with per-rank counts/displacements (elements).
  template <class T>
  void alltoallv(const T* sendbuf, const std::vector<std::int64_t>& scounts,
                 const std::vector<std::int64_t>& sdispls, T* recvbuf,
                 const std::vector<std::int64_t>& rcounts,
                 const std::vector<std::int64_t>& rdispls) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    const auto n = static_cast<std::size_t>(size());
    TUCKER_CHECK(scounts.size() == n && sdispls.size() == n &&
                     rcounts.size() == n && rdispls.size() == n,
                 "alltoallv: counts/displs must have comm-size entries");
    std::vector<std::int64_t> sc(n), sd(n), rc(n), rd(n);
    for (std::size_t i = 0; i < n; ++i) {
      sc[i] = scounts[i] * es;
      sd[i] = sdispls[i] * es;
      rc[i] = rcounts[i] * es;
      rd[i] = rdispls[i] * es;
    }
    alltoallv_bytes(sendbuf, sc, sd, recvbuf, rc, rd);
  }

  /// Splits into subcommunicators; ranks passing the same color end up in
  /// the same Comm, ordered by (key, old rank). Collective over this comm.
  Comm split(int color, int key);

  // ---- virtual time & accounting ---------------------------------------
  /// Samples this thread's CPU timer and charges the delta to the virtual
  /// clock (called automatically by every communication op).
  void sync_cpu_clock();

  /// Simulated time at this rank (call sync_cpu_clock() first for an
  /// up-to-date value mid-run).
  double vtime() const;

  /// Modeled communication seconds this rank has hidden behind compute or
  /// behind other in-flight operations so far.
  double comm_hidden() const;

  /// Region labeling for time breakdowns ("mode2/LQ", ...).
  RegionScope region(std::string name);
  Breakdown& breakdown();

  std::int64_t bytes_sent() const;
  std::int64_t messages_sent() const;

 private:
  friend class Runtime;
  friend class WorldAccess;
  friend class Request;
  Comm(World* world, std::vector<int> group, int rank, std::int64_t ctx)
      : world_(world), group_(std::move(group)), rank_(rank), ctx_(ctx) {}

  template <class T>
  static std::function<void(void*, const void*)> combine_fn(std::int64_t count,
                                                            Op op) {
    return [count, op](void* inout, const void* in) {
      T* a = static_cast<T*>(inout);
      const T* b = static_cast<const T*>(in);
      for (std::int64_t i = 0; i < count; ++i) {
        switch (op) {
          case Op::kSum: a[i] += b[i]; break;
          case Op::kMax: a[i] = a[i] > b[i] ? a[i] : b[i]; break;
          case Op::kMin: a[i] = a[i] < b[i] ? a[i] : b[i]; break;
        }
      }
    };
  }

  // Tag spaces: user tags and internal collective tags must not collide.
  std::int64_t user_tag(int tag) const {
    TUCKER_CHECK(tag >= 0, "negative tags are reserved");
    return tag;
  }
  std::int64_t next_coll_tag();

  void send_bytes(int dst, std::int64_t tag, const void* data,
                  std::int64_t bytes);
  void recv_bytes(int src, std::int64_t tag, void* data, std::int64_t bytes);
  Request isend_bytes(int dst, std::int64_t tag, const void* data,
                      std::int64_t bytes);
  Request irecv_bytes(int src, std::int64_t tag, void* data,
                      std::int64_t bytes);
  Request iallreduce_bytes(
      void* data, std::int64_t bytes,
      const std::function<void(void*, const void*)>& combine);
  // Consumes the matching message (blocking unless nonblocking=true, in
  // which case returns false when no match is queued); on success stores
  // the payload and its ready time.
  bool match_recv(int src_world, std::int64_t tag, void* data,
                  std::int64_t bytes, bool nonblocking, double* ready_vtime);
  // Credits a completed nonblocking op: clock -> max(vtime, completion),
  // gap charged as comm, remainder of the op's span recorded as hidden.
  void credit_completion(double post_vtime, double completion);
  void bcast_bytes(void* data, std::int64_t bytes, int root);
  void allreduce_bytes(
      void* data, std::int64_t bytes,
      const std::function<void(void*, const void*)>& combine);
  void reduce_scatter_bytes(
      const void* data, void* recvbuf,
      const std::vector<std::int64_t>& byte_counts,
      const std::function<void(void*, const void*, std::int64_t)>& add_range);
  void reduce_scatter_overlap_bytes(
      const void* data, void* recvbuf,
      const std::vector<std::int64_t>& byte_counts,
      const std::function<void(void*, const void*, std::int64_t)>& add_range);
  void gatherv_bytes(const void* sendbuf, std::int64_t sendbytes,
                     void* recvbuf, const std::vector<std::int64_t>& counts,
                     int root);
  void alltoallv_bytes(const void* sendbuf,
                       const std::vector<std::int64_t>& sc,
                       const std::vector<std::int64_t>& sd, void* recvbuf,
                       const std::vector<std::int64_t>& rc,
                       const std::vector<std::int64_t>& rd);

  World* world_;
  std::vector<int> group_;  // world ranks of comm members, by comm rank
  int rank_;                // my rank within this comm
  std::int64_t ctx_;        // context id separating comms' traffic
  std::int64_t coll_seq_ = 0;
};

}  // namespace tucker::mpi
