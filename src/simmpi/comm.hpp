#pragma once
// Simulated MPI communicator.
//
// Ranks are threads inside one process (see runtime.hpp); a Comm provides
// the MPI subset the Tucker algorithms need: blocking tagged send/recv,
// sendrecv, barrier, bcast (binomial tree), allreduce (recursive doubling
// with non-power-of-two fold), gatherv-to-root, and pairwise alltoallv --
// the same algorithms production MPI libraries use, so message and byte
// counts (and their log P latency structure) are real, not formulas.
//
// Every operation also advances the rank's *virtual clock*: measured thread
// CPU time since the last sample (compute) plus alpha+beta*bytes modeled
// costs (communication). Simulated parallel runtime = max over ranks of the
// final virtual clock. Point-to-point messages carry the sender's clock so
// dependency chains propagate through collectives automatically.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "simmpi/breakdown.hpp"
#include "simmpi/cost_model.hpp"

namespace tucker::mpi {

class World;

enum class Op { kSum, kMax, kMin };

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }

  // ---- point to point -------------------------------------------------
  template <class T>
  void send(int dst, const T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, user_tag(tag), data,
               count * static_cast<std::int64_t>(sizeof(T)));
  }

  template <class T>
  void recv(int src, T* data, std::int64_t count, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, user_tag(tag), data,
               count * static_cast<std::int64_t>(sizeof(T)));
  }

  /// Simultaneous exchange with a partner rank (deadlock-free).
  template <class T>
  void sendrecv(int partner, const T* sendbuf, std::int64_t sendcount,
                T* recvbuf, std::int64_t recvcount, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(partner, user_tag(tag), sendbuf,
               sendcount * static_cast<std::int64_t>(sizeof(T)));
    recv_bytes(partner, user_tag(tag), recvbuf,
               recvcount * static_cast<std::int64_t>(sizeof(T)));
  }

  // ---- collectives ----------------------------------------------------
  void barrier();

  template <class T>
  void bcast(T* data, std::int64_t count, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(data, count * static_cast<std::int64_t>(sizeof(T)), root);
  }

  template <class T>
  void allreduce(T* data, std::int64_t count, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    allreduce_bytes(
        data, count * static_cast<std::int64_t>(sizeof(T)),
        [count, op](void* inout, const void* in) {
          T* a = static_cast<T*>(inout);
          const T* b = static_cast<const T*>(in);
          for (std::int64_t i = 0; i < count; ++i) {
            switch (op) {
              case Op::kSum: a[i] += b[i]; break;
              case Op::kMax: a[i] = a[i] > b[i] ? a[i] : b[i]; break;
              case Op::kMin: a[i] = a[i] < b[i] ? a[i] : b[i]; break;
            }
          }
        });
  }

  /// Reduce-scatter: element-wise sum of every rank's `data` (counts.total
  /// elements), after which each rank keeps only its block as given by
  /// `counts` (rank r receives counts[r] elements into recvbuf). This is
  /// the collective TuckerMPI's TTM uses to re-block the truncated mode.
  template <class T>
  void reduce_scatter(const T* data, T* recvbuf,
                      const std::vector<std::int64_t>& counts) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    std::vector<std::int64_t> byte_counts(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
      byte_counts[i] = counts[i] * es;
    reduce_scatter_bytes(
        data, recvbuf, byte_counts,
        [](void* inout, const void* in, std::int64_t bytes) {
          T* a = static_cast<T*>(inout);
          const T* b = static_cast<const T*>(in);
          const std::int64_t n = bytes / static_cast<std::int64_t>(sizeof(T));
          for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
        });
  }

  /// Gathers variable-sized blocks to `root`. counts has size() entries
  /// (in elements); recvbuf (significant at root) is laid out contiguously
  /// in rank order.
  template <class T>
  void gatherv(const T* sendbuf, std::int64_t sendcount, T* recvbuf,
               const std::vector<std::int64_t>& counts, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    std::vector<std::int64_t> byte_counts(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
      byte_counts[i] = counts[i] * es;
    gatherv_bytes(sendbuf, sendcount * es, recvbuf, byte_counts, root);
  }

  /// Personalized all-to-all with per-rank counts/displacements (elements).
  template <class T>
  void alltoallv(const T* sendbuf, const std::vector<std::int64_t>& scounts,
                 const std::vector<std::int64_t>& sdispls, T* recvbuf,
                 const std::vector<std::int64_t>& rcounts,
                 const std::vector<std::int64_t>& rdispls) {
    static_assert(std::is_trivially_copyable_v<T>);
    constexpr auto es = static_cast<std::int64_t>(sizeof(T));
    const auto n = static_cast<std::size_t>(size());
    TUCKER_CHECK(scounts.size() == n && sdispls.size() == n &&
                     rcounts.size() == n && rdispls.size() == n,
                 "alltoallv: counts/displs must have comm-size entries");
    std::vector<std::int64_t> sc(n), sd(n), rc(n), rd(n);
    for (std::size_t i = 0; i < n; ++i) {
      sc[i] = scounts[i] * es;
      sd[i] = sdispls[i] * es;
      rc[i] = rcounts[i] * es;
      rd[i] = rdispls[i] * es;
    }
    alltoallv_bytes(sendbuf, sc, sd, recvbuf, rc, rd);
  }

  /// Splits into subcommunicators; ranks passing the same color end up in
  /// the same Comm, ordered by (key, old rank). Collective over this comm.
  Comm split(int color, int key);

  // ---- virtual time & accounting ---------------------------------------
  /// Samples this thread's CPU timer and charges the delta to the virtual
  /// clock (called automatically by every communication op).
  void sync_cpu_clock();

  /// Simulated time at this rank (call sync_cpu_clock() first for an
  /// up-to-date value mid-run).
  double vtime() const;

  /// Region labeling for time breakdowns ("mode2/LQ", ...).
  RegionScope region(std::string name);
  Breakdown& breakdown();

  std::int64_t bytes_sent() const;
  std::int64_t messages_sent() const;

 private:
  friend class Runtime;
  friend class WorldAccess;
  Comm(World* world, std::vector<int> group, int rank, std::int64_t ctx)
      : world_(world), group_(std::move(group)), rank_(rank), ctx_(ctx) {}

  // Tag spaces: user tags and internal collective tags must not collide.
  std::int64_t user_tag(int tag) const {
    TUCKER_CHECK(tag >= 0, "negative tags are reserved");
    return tag;
  }
  std::int64_t next_coll_tag();

  void send_bytes(int dst, std::int64_t tag, const void* data,
                  std::int64_t bytes);
  void recv_bytes(int src, std::int64_t tag, void* data, std::int64_t bytes);
  void bcast_bytes(void* data, std::int64_t bytes, int root);
  void allreduce_bytes(
      void* data, std::int64_t bytes,
      const std::function<void(void*, const void*)>& combine);
  void reduce_scatter_bytes(
      const void* data, void* recvbuf,
      const std::vector<std::int64_t>& byte_counts,
      const std::function<void(void*, const void*, std::int64_t)>& add_range);
  void gatherv_bytes(const void* sendbuf, std::int64_t sendbytes,
                     void* recvbuf, const std::vector<std::int64_t>& counts,
                     int root);
  void alltoallv_bytes(const void* sendbuf,
                       const std::vector<std::int64_t>& sc,
                       const std::vector<std::int64_t>& sd, void* recvbuf,
                       const std::vector<std::int64_t>& rc,
                       const std::vector<std::int64_t>& rd);

  World* world_;
  std::vector<int> group_;  // world ranks of comm members, by comm rank
  int rank_;                // my rank within this comm
  std::int64_t ctx_;        // context id separating comms' traffic
  std::int64_t coll_seq_ = 0;
};

}  // namespace tucker::mpi
