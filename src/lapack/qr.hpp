#pragma once
// Householder QR and LQ factorizations (geqrf / gelqf equivalents).
//
// geqrf reduces A (m x n) to upper-triangular/trapezoidal R in place, with
// the reflector vectors stored below the diagonal (LAPACK convention).
// gelqf is expressed as geqrf of the transposed view, so a single kernel
// serves both the column-major mode-0 unfolding (paper: gelq) and the
// row-major last-mode unfolding (paper: geqr). Q is never formed on the
// production path -- QR-SVD discards it -- but form_q is provided for tests
// and for users who need the orthogonal factor.

#include <vector>

#include "blas/gemm.hpp"
#include "blas/matrix.hpp"
#include "blas/matview.hpp"
#include "common/tuning.hpp"
#include "common/workspace.hpp"
#include "lapack/householder.hpp"

namespace tucker::la {

namespace detail {

/// Unblocked Householder QR: reflector-at-a-time with BLAS-2 trailing
/// updates. Used directly for narrow matrices and as the panel kernel of
/// the blocked algorithm.
template <class T>
void geqrf_unblocked(MatView<T> a, T* tau) {
  const index_t m = a.rows(), n = a.cols();
  const index_t k = std::min(m, n);
  for (index_t j = 0; j < k; ++j) {
    T& alpha = a(j, j);
    const index_t tail = m - j - 1;
    T* x = tail > 0 ? &a(j + 1, j) : nullptr;
    tau[j] = make_reflector(alpha, tail, x, a.row_stride());
    if (j + 1 < n) {
      auto vcol = a.block(j + 1, j, tail, 1);
      auto top = a.block(j, j + 1, 1, n - j - 1);
      auto rest = a.block(j + 1, j + 1, tail, n - j - 1);
      apply_reflector(tau[j], MatView<const T>(vcol), top, rest);
    }
  }
}

/// Applies Q^T = (I - Y T Y^T)^T = I - Y T^T Y^T from the left to C, where
/// Y is the unit-lower-trapezoid reflector storage of a factored panel
/// (m x k) and t is its compact-WY factor (k x k upper triangular). The
/// dominant work is two gemm calls over Y's rectangular part, which is what
/// makes the whole QR run at matrix-multiply speed. The gemms parallelize
/// internally; the three triangular hand loops are column-independent, so
/// for wide trailing matrices they fan out over column ranges of C (each
/// column's accumulation order is untouched -- bitwise thread-invariant).
template <class T>
void apply_block_qt(MatView<const T> y, MatView<const T> t, MatView<T> c) {
  const index_t m = y.rows();
  const index_t k = y.cols();
  const index_t nc = c.cols();
  if (k == 0 || nc == 0) return;
  TUCKER_DCHECK(c.rows() == m, "apply_block_qt: row mismatch");
  auto c1 = c.block(0, 0, k, nc);

  Workspace& workspace = Workspace::local();
  auto scratch = workspace.frame();
  auto w = MatView<T>::row_major(
      workspace.get<T>(static_cast<std::size_t>(k * nc)), k, nc);
  auto run_cols = [&](index_t jlo, index_t jhi) {
    // W = Y1^T C1 + Y2^T C2 is assembled in two steps; this lambda handles
    // the triangular Y1 part and the T^T / Y1 back-substitutions for its
    // column range. The rectangular Y2 parts stay in the gemms below.
    for (index_t i = 0; i < k; ++i)
      for (index_t j = jlo; j < jhi; ++j) {
        T s = c1(i, j);
        for (index_t r = i + 1; r < k; ++r) s += y(r, i) * c1(r, j);
        w(i, j) = s;
      }
  };
  auto run_cols_tw = [&](index_t jlo, index_t jhi) {
    // W <- T^T W (T upper triangular; in-place bottom-up accumulation).
    for (index_t j = jlo; j < jhi; ++j) {
      for (index_t i = k; i-- > 0;) {
        T s = T(0);
        for (index_t r = 0; r <= i; ++r) s += t(r, i) * w(r, j);
        w(i, j) = s;
      }
    }
  };
  auto run_cols_sub = [&](index_t jlo, index_t jhi) {
    // C1 -= Y1 W (unit lower triangular Y1).
    for (index_t i = k; i-- > 0;) {
      for (index_t j = jlo; j < jhi; ++j) {
        T s = w(i, j);
        for (index_t r = 0; r < i; ++r) s += y(i, r) * w(r, j);
        c1(i, j) -= s;
      }
    }
  };

  const bool par = parallel::this_thread_width() > 1 &&
                   static_cast<double>(k) * k * nc >= tune::par_flop_threshold();

  if (par) {
    parallel::parallel_for(0, nc, 32, run_cols);
  } else {
    run_cols(0, nc);
  }
  tucker::add_flops(k * k * nc);
  if (m > k) {
    auto y2 = y.block(k, 0, m - k, k);
    auto c2 = c.block(k, 0, m - k, nc);
    blas::gemm(T(1), MatView<const T>(y2.t()), MatView<const T>(c2), T(1), w);
  }

  if (par) {
    parallel::parallel_for(0, nc, 32, run_cols_tw);
  } else {
    run_cols_tw(0, nc);
  }
  tucker::add_flops(k * k * nc);

  if (par) {
    parallel::parallel_for(0, nc, 32, run_cols_sub);
  } else {
    run_cols_sub(0, nc);
  }
  tucker::add_flops(k * k * nc);
  if (m > k) {
    auto y2 = y.block(k, 0, m - k, k);
    auto c2 = c.block(k, 0, m - k, nc);
    blas::gemm(T(-1), y2, MatView<const T>(w), T(1), c2);
  }
}

/// Recursive QR with compact-WY accumulation (Elmroth-Gustavson RGEQR3):
/// factors a (m x n, m >= n) in place and fills the upper triangle of t
/// (n x n, strict lower triangle must be zero on entry) with the T factor
/// of the whole panel: H_0 ... H_{n-1} = I - Y T Y^T. All trailing updates
/// and the T glue blocks are gemm calls; BLAS-2 work is confined to the
/// n <= 2 base cases.
template <class T>
void geqr3(MatView<T> a, MatView<T> t, T* tau) {
  const index_t m = a.rows(), n = a.cols();
  TUCKER_DCHECK(m >= n, "geqr3: requires tall or square panel");
  if (n <= 2) {
    geqrf_unblocked(a, tau);
    t(0, 0) = tau[0];
    if (n == 2) {
      t(1, 1) = tau[1];
      // T(0,1) = -tau0 * (v0^T v1) * tau1, v1 unit at row 1.
      T z = a(1, 0);
      if (m > 2) {
        if (a.row_stride() == 1) {
          z += blas::detail::fast_dot(m - 2, &a(2, 0), &a(2, 1));
        } else {
          for (index_t r = 2; r < m; ++r) z += a(r, 0) * a(r, 1);
        }
        tucker::add_flops(2 * (m - 2));
      }
      t(0, 1) = -tau[0] * z * tau[1];
    }
    return;
  }

  const index_t n1 = n / 2;
  const index_t n2 = n - n1;
  auto a1 = a.block(0, 0, m, n1);
  auto t1 = t.block(0, 0, n1, n1);
  geqr3(a1, t1, tau);

  // A2 <- Q1^T A2.
  apply_block_qt(MatView<const T>(a1), MatView<const T>(t1),
                 a.block(0, n1, m, n2));

  auto a22 = a.block(n1, n1, m - n1, n2);
  auto t2 = t.block(n1, n1, n2, n2);
  geqr3(a22, t2, tau + n1);

  // Glue block: T12 = -T1 * (Y1[n1:, :]^T * Y2) * T2. Scratch from the
  // arena -- geqr3 recursions nest their frames like stack frames.
  Workspace& workspace = Workspace::local();
  auto scratch = workspace.frame();
  auto z = MatView<T>::row_major(
      workspace.get<T>(static_cast<std::size_t>(n1 * n2)), n1, n2);
  // Head rows of Y2 (unit lower triangle at a(n1+r, n1+j), r in [0, n2)).
  for (index_t i = 0; i < n1; ++i)
    for (index_t j = 0; j < n2; ++j) {
      T s = a(n1 + j, i);  // unit diagonal of Y2
      for (index_t r = j + 1; r < n2; ++r) s += a(n1 + r, i) * a(n1 + r, n1 + j);
      z(i, j) = s;
    }
  tucker::add_flops(n1 * n2 * n2);
  if (m > n1 + n2) {
    auto y1tail = a.block(n1 + n2, 0, m - n1 - n2, n1);
    auto y2tail = a.block(n1 + n2, n1, m - n1 - n2, n2);
    blas::gemm(T(1), MatView<const T>(y1tail.t()), MatView<const T>(y2tail),
               T(1), z);
  }
  auto zt2 = MatView<T>::row_major(
      workspace.get<T>(static_cast<std::size_t>(n1 * n2)), n1, n2);
  blas::gemm(T(1), MatView<const T>(z), MatView<const T>(t2), T(0), zt2);
  blas::gemm(T(-1), MatView<const T>(t1), MatView<const T>(zt2), T(0),
             t.block(0, n1, n1, n2));
}

}  // namespace detail

/// In-place Householder QR of A (m x n). On return the upper triangle holds
/// R and the strict lower triangle holds the reflector tails; tau receives
/// min(m, n) scalar factors. Wide matrices are processed in panels factored
/// by the recursive compact-WY algorithm (detail::geqr3), with gemm-based
/// trailing updates -- so the QR/LQ path runs at matrix-multiply speed,
/// which is what keeps QR-SVD within the paper's 2x-of-Gram cost envelope.
template <class T>
void geqrf(MatView<T> a, std::vector<T>& tau) {
  const index_t m = a.rows(), n = a.cols();
  const index_t k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), T(0));
  constexpr index_t nb = 64;
  if (k <= 8) {
    detail::geqrf_unblocked(a, tau.data());
    return;
  }

  Workspace& workspace = Workspace::local();
  auto scratch = workspace.frame();
  auto tmat = MatView<T>::row_major(
      workspace.get<T>(static_cast<std::size_t>(nb * nb)), nb, nb);
  for (index_t j0 = 0; j0 < k; j0 += nb) {
    const index_t jb = std::min(nb, k - j0);
    const index_t mm = m - j0;
    auto panel = a.block(j0, j0, mm, jb);
    auto tview = tmat.block(0, 0, jb, jb);
    blas::fill(tview, T(0));
    detail::geqr3(panel, tview, tau.data() + j0);

    const index_t nc = n - j0 - jb;
    if (nc > 0) {
      detail::apply_block_qt(MatView<const T>(panel),
                             MatView<const T>(tview),
                             a.block(j0, j0 + jb, mm, nc));
    }
  }
}

/// In-place Householder LQ of A (m x n): lower triangle holds L, reflector
/// tails stored to the right of the diagonal. Equivalent to QR of A^T.
template <class T>
void gelqf(MatView<T> a, std::vector<T>& tau) {
  geqrf(a.t(), tau);
}

/// Extracts the k x n upper-triangular/trapezoidal R factor after geqrf.
template <class T>
blas::Matrix<T> extract_r(MatView<const T> a) {
  const index_t k = std::min(a.rows(), a.cols());
  blas::Matrix<T> r(k, a.cols());
  for (index_t i = 0; i < k; ++i)
    for (index_t j = i; j < a.cols(); ++j) r(i, j) = a(i, j);
  return r;
}

/// Extracts the m x k lower-triangular/trapezoidal L factor after gelqf.
template <class T>
blas::Matrix<T> extract_l(MatView<const T> a) {
  const index_t k = std::min(a.rows(), a.cols());
  blas::Matrix<T> l(a.rows(), k);
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j <= std::min(i, k - 1); ++j) l(i, j) = a(i, j);
  return l;
}

/// Forms the leading q.cols() columns of Q (q must be m x ncols, ncols <= m)
/// from the reflectors produced by geqrf, writing into caller-provided
/// storage -- the allocation-free variant the randomized range finder uses
/// on its Workspace-arena buffers. q is overwritten.
template <class T>
void form_q_into(MatView<const T> a, const std::vector<T>& tau,
                 MatView<T> q) {
  const index_t m = a.rows();
  const index_t ncols = q.cols();
  const index_t k = static_cast<index_t>(tau.size());
  TUCKER_CHECK(q.rows() == m && ncols <= m,
               "form_q_into: Q must be m x ncols with ncols <= m");
  blas::fill(q, T(0));
  for (index_t j = 0; j < std::min(m, ncols); ++j) q(j, j) = T(1);
  // Apply H_{k-1} ... H_0 to the identity (reverse order builds Q).
  for (index_t j = k - 1; j >= 0; --j) {
    const index_t tail = m - j - 1;
    auto vcol = a.block(j + 1, j, tail, 1);
    auto top = q.block(j, 0, 1, ncols);
    auto rest = q.block(j + 1, 0, tail, ncols);
    apply_reflector(tau[static_cast<std::size_t>(j)], MatView<const T>(vcol),
                    top, rest);
  }
}

/// Forms the leading ncols columns of Q (m x ncols, ncols <= m) from the
/// reflectors produced by geqrf. Intended for tests and examples.
template <class T>
blas::Matrix<T> form_q(MatView<const T> a, const std::vector<T>& tau,
                       index_t ncols) {
  blas::Matrix<T> q(a.rows(), ncols);
  form_q_into(a, tau, q.view());
  return q;
}

}  // namespace tucker::la
