#pragma once
// Structured QR/LQ of a triangle stacked on a pentagon (tpqrt/tplqt
// equivalents).
//
// These kernels drive both TSQR phases of the paper:
//  - the sequential flat-tree TensorLQ (Alg 2) annihilates each row-major
//    unfolding block into the running triangular factor, and
//  - the parallel butterfly reduction (Alg 3) annihilates one triangular
//    factor into another at every tree level.
// When the pentagon block is itself triangular the reflectors touch only the
// nonzero rows, halving the flops -- the same structure exploitation LAPACK's
// tpqrt provides.

#include <vector>

#include "blas/gemm.hpp"
#include "blas/matrix.hpp"
#include "blas/matview.hpp"
#include "common/tuning.hpp"
#include "common/workspace.hpp"
#include "lapack/householder.hpp"

namespace tucker::la {

/// Shape of the B block in a [R; B] stack.
enum class Pentagon {
  kFull,       ///< B is a dense rectangle.
  kTriangular  ///< B is upper triangular (butterfly reduction case).
};

/// QR of the stacked matrix [R; B] where R (n x n) is upper triangular and
/// B is m x n. On return R holds the new triangular factor and B holds the
/// reflector tails (the leading 1 of each reflector lives in R's diagonal).
namespace detail {

/// Unblocked structured QR of [R; B] (see tpqrt below). Offsets into tau
/// so the blocked driver can reuse it as the panel kernel.
template <class T>
void tpqrt_unblocked(MatView<T> r, MatView<T> b, T* tau, Pentagon shape) {
  const index_t n = r.cols();
  const index_t m = b.rows();
  for (index_t j = 0; j < n; ++j) {
    // Rows of B participating in this reflector.
    const index_t nb =
        shape == Pentagon::kTriangular ? std::min(m, j + 1) : m;
    if (nb == 0) continue;
    // Reflector over [R(j,j); B(0:nb, j)].
    tau[j] = make_reflector(r(j, j), nb, &b(0, j), b.row_stride());
    if (j + 1 < n) {
      auto vcol = b.block(0, j, nb, 1);
      auto top = r.block(j, j + 1, 1, n - j - 1);
      auto rest = b.block(0, j + 1, nb, n - j - 1);
      apply_reflector(tau[j], MatView<const T>(vcol), top, rest);
    }
  }
}

}  // namespace detail

/// tau receives n scalars. With Pentagon::kTriangular, column j of B is
/// assumed zero below row j and only rows 0..j participate.
///
/// Wide full-pentagon stacks (the flat-tree TensorLQ case, where B is a
/// whole unfolding block) are processed in compact-WY column panels with
/// gemm trailing updates over B -- LAPACK's blocked tpqrt strategy -- so
/// the mid-mode flat tree runs at matrix-multiply speed. The reflectors of
/// a [R; B] panel have the special structure V = [I; B_panel] (unit rows in
/// R, dense tails in B), so V_i^T V_j reduces to B-column inner products.
template <class T>
void tpqrt(MatView<T> r, MatView<T> b, std::vector<T>& tau,
           Pentagon shape = Pentagon::kFull) {
  const index_t n = r.cols();
  const index_t m = b.rows();
  TUCKER_CHECK(r.rows() == n, "tpqrt: R must be square");
  TUCKER_CHECK(b.cols() == n, "tpqrt: B width mismatch");
  tau.assign(static_cast<std::size_t>(n), T(0));

  constexpr index_t kPanel = 48;
  if (shape == Pentagon::kTriangular || n <= kPanel || m < 2 * kPanel) {
    detail::tpqrt_unblocked(r, b, tau.data(), shape);
    return;
  }

  Workspace& workspace = Workspace::local();
  auto scratch = workspace.frame();
  auto tmat = MatView<T>::row_major(
      workspace.get<T>(static_cast<std::size_t>(kPanel * kPanel)), kPanel,
      kPanel);
  T* z = workspace.get<T>(static_cast<std::size_t>(kPanel));
  for (index_t j0 = 0; j0 < n; j0 += kPanel) {
    const index_t jb = std::min(kPanel, n - j0);
    auto rp = r.block(j0, j0, jb, jb);
    auto bp = b.block(0, j0, m, jb);
    detail::tpqrt_unblocked(rp, bp, tau.data() + j0, Pentagon::kFull);

    const index_t nc = n - j0 - jb;
    if (nc <= 0) continue;

    // Compact-WY T for the panel (larft with this storage scheme): since
    // V_j = [e_j; bp(:, j)], the cross products V_i^T V_j reduce to
    // bp-column inner products. The j recursion is sequential, but the
    // O(m) inner products for a given j are independent -- for the long
    // unfolding blocks of the flat-tree TensorLQ they dominate, so they
    // fan out over i (each dot is computed exactly as in the serial run).
    auto tm = tmat.block(0, 0, jb, jb);
    blas::fill(tm, T(0));
    for (index_t j = 0; j < jb; ++j) {
      const T tj = tau[static_cast<std::size_t>(j0 + j)];
      if (tj == T(0)) continue;
      auto run_dots = [&](index_t ilo, index_t ihi) {
        for (index_t i = ilo; i < ihi; ++i) {
          T zi = T(0);
          if (bp.row_stride() == 1) {
            zi = blas::detail::fast_dot(m, &bp(0, i), &bp(0, j));
          } else {
            for (index_t k = 0; k < m; ++k) zi += bp(k, i) * bp(k, j);
          }
          z[i] = zi;
        }
      };
      if (parallel::this_thread_width() > 1 &&
          2.0 * static_cast<double>(m) * j >= tune::par_flop_threshold()) {
        parallel::parallel_for(0, j, 4, run_dots);
      } else {
        run_dots(0, j);
      }
      tucker::add_flops(2 * m * j);
      for (index_t i = 0; i < j; ++i) {
        T s = T(0);
        for (index_t k = i; k < j; ++k) s += tmat(i, k) * z[k];
        tmat(i, j) = -tj * s;
      }
      tmat(j, j) = tj;
    }

    // Apply (I - V T^T V^T) to the trailing [R_t; B_t]:
    //   W = R_t(panel rows) + B_panel^T B_t;  W <- T^T W;
    //   R_t(panel rows) -= W;  B_t -= B_panel W.
    auto rt = r.block(j0, j0 + jb, jb, nc);
    auto bt = b.block(0, j0 + jb, m, nc);
    auto inner = workspace.frame();
    auto w = MatView<T>::row_major(
        workspace.get<T>(static_cast<std::size_t>(jb * nc)), jb, nc);
    blas::copy(MatView<const T>(rt), w);
    blas::gemm(T(1), MatView<const T>(bp.t()), MatView<const T>(bt), T(1), w);
    // T^T W and the R-block subtraction are column-independent: fan out
    // over columns of the trailing matrix (per-column order unchanged).
    auto run_cols = [&](index_t jlo, index_t jhi) {
      for (index_t j = jlo; j < jhi; ++j) {
        for (index_t i = jb; i-- > 0;) {
          T s = T(0);
          for (index_t k = 0; k <= i; ++k) s += tmat(k, i) * w(k, j);
          w(i, j) = s;
        }
        for (index_t i = 0; i < jb; ++i) rt(i, j) -= w(i, j);
      }
    };
    if (parallel::this_thread_width() > 1 &&
        static_cast<double>(jb) * jb * nc >= tune::par_flop_threshold()) {
      parallel::parallel_for(0, nc, 32, run_cols);
    } else {
      run_cols(0, nc);
    }
    tucker::add_flops(jb * jb * nc);
    blas::gemm(T(-1), MatView<const T>(bp), MatView<const T>(w), T(1), bt);
  }
}

/// LQ of the side-by-side matrix [L A] where L (m x m) is lower triangular
/// and A is m x k: the structured transpose of tpqrt. On return L holds the
/// new lower-triangular factor. With Pentagon::kTriangular, A is assumed
/// lower triangular (row i zero beyond column i).
template <class T>
void tplqt(MatView<T> l, MatView<T> a, std::vector<T>& tau,
           Pentagon shape = Pentagon::kFull) {
  tpqrt(l.t(), a.t(), tau, shape);
}

}  // namespace tucker::la
