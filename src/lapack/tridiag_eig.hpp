#pragma once
// Symmetric eigendecomposition via Householder tridiagonalization + implicit
// QL iteration with Wilkinson shifts (the classical tred2/tql2 pair, which
// is what LAPACK's syev family descends from).
//
// Provided as the alternative backend for the Gram-SVD path: Jacobi EVD
// (eig.hpp) is simpler and extremely accurate; tridiagonal QL is
// asymptotically cheaper (O(n^3) with a small constant for the reduction,
// O(n^2) per eigenvalue for the iteration). The Gram method's sqrt(eps)
// accuracy floor (paper Theorem 2) comes from forming A A^T, so the two
// backends reproduce the paper identically.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "blas/matrix.hpp"
#include "common/flops.hpp"
#include "common/precision.hpp"
#include "lapack/eig.hpp"

namespace tucker::la {

/// Eigendecomposition of a symmetric n x n matrix; same contract as
/// jacobi_eig (eigenvalues sorted by descending |lambda|, matching
/// eigenvector columns).
template <class T>
EigResult<T> tridiag_eig(blas::MatView<const T> a, int max_iter = 50) {
  using blas::index_t;
  const index_t n = a.rows();
  TUCKER_CHECK(a.cols() == n, "tridiag_eig: matrix must be square");

  blas::Matrix<T> q = blas::Matrix<T>::from(a);  // workspace, then vectors
  std::vector<T> d(static_cast<std::size_t>(n), T(0));
  std::vector<T> e(static_cast<std::size_t>(n), T(0));

  // ---- Householder tridiagonalization (tred2, accumulating transforms) --
  for (index_t i = n - 1; i > 0; --i) {
    const index_t l = i - 1;
    T h = T(0);
    if (l > 0) {
      T scale = T(0);
      for (index_t k = 0; k <= l; ++k) scale += std::abs(q(i, k));
      if (scale == T(0)) {
        e[static_cast<std::size_t>(i)] = q(i, l);
      } else {
        for (index_t k = 0; k <= l; ++k) {
          q(i, k) /= scale;
          h += q(i, k) * q(i, k);
        }
        T f = q(i, l);
        T g = f >= T(0) ? -std::sqrt(h) : std::sqrt(h);
        e[static_cast<std::size_t>(i)] = scale * g;
        h -= f * g;
        q(i, l) = f - g;
        f = T(0);
        for (index_t j = 0; j <= l; ++j) {
          q(j, i) = q(i, j) / h;  // store u/H for transform accumulation
          g = T(0);
          for (index_t k = 0; k <= j; ++k) g += q(j, k) * q(i, k);
          for (index_t k = j + 1; k <= l; ++k) g += q(k, j) * q(i, k);
          e[static_cast<std::size_t>(j)] = g / h;
          f += e[static_cast<std::size_t>(j)] * q(i, j);
        }
        const T hh = f / (h + h);
        for (index_t j = 0; j <= l; ++j) {
          f = q(i, j);
          e[static_cast<std::size_t>(j)] = g =
              e[static_cast<std::size_t>(j)] - hh * f;
          for (index_t k = 0; k <= j; ++k)
            q(j, k) -= f * e[static_cast<std::size_t>(k)] + g * q(i, k);
        }
        tucker::add_flops(4 * (l + 1) * (l + 1));
      }
    } else {
      e[static_cast<std::size_t>(i)] = q(i, l);
    }
    d[static_cast<std::size_t>(i)] = h;
  }
  d[0] = T(0);
  e[0] = T(0);
  // Accumulate the transformation matrix.
  for (index_t i = 0; i < n; ++i) {
    const index_t l = i;  // leading l x l block finished
    if (d[static_cast<std::size_t>(i)] != T(0)) {
      for (index_t j = 0; j < l; ++j) {
        T g = T(0);
        for (index_t k = 0; k < l; ++k) g += q(i, k) * q(k, j);
        for (index_t k = 0; k < l; ++k) q(k, j) -= g * q(k, i);
      }
      tucker::add_flops(2 * l * l);
    }
    d[static_cast<std::size_t>(i)] = q(i, i);
    q(i, i) = T(1);
    for (index_t j = 0; j < l; ++j) {
      q(j, i) = T(0);
      q(i, j) = T(0);
    }
  }

  // ---- implicit QL with Wilkinson shifts (tql2) ----
  for (index_t i = 1; i < n; ++i)
    e[static_cast<std::size_t>(i - 1)] = e[static_cast<std::size_t>(i)];
  e[static_cast<std::size_t>(n - 1)] = T(0);
  const T eps = precision<T>::eps;

  for (index_t l = 0; l < n; ++l) {
    int iter = 0;
    index_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const T dd = std::abs(d[static_cast<std::size_t>(m)]) +
                     std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= eps * dd) break;
      }
      if (m != l) {
        if (iter++ == max_iter) break;  // graceful: values still usable
        T g = (d[static_cast<std::size_t>(l + 1)] -
               d[static_cast<std::size_t>(l)]) /
              (T(2) * e[static_cast<std::size_t>(l)]);
        T r = static_cast<T>(std::hypot(g, T(1)));
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] /
                (g + std::copysign(r, g));
        T s = T(1), c = T(1), p = T(0);
        bool underflow = false;
        for (index_t i = m; i-- > l;) {
          T f = s * e[static_cast<std::size_t>(i)];
          const T b = c * e[static_cast<std::size_t>(i)];
          r = static_cast<T>(std::hypot(f, g));
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == T(0)) {
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = T(0);
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + T(2) * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          // Rotate eigenvector columns i, i+1.
          for (index_t k = 0; k < n; ++k) {
            f = q(k, i + 1);
            q(k, i + 1) = s * q(k, i) + c * f;
            q(k, i) = c * q(k, i) - s * f;
          }
          tucker::add_flops(6 * n);
        }
        if (underflow) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = T(0);
      }
    } while (m != l);
  }

  // ---- sort by |lambda| descending (Gram convention) ----
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return std::abs(d[static_cast<std::size_t>(x)]) >
           std::abs(d[static_cast<std::size_t>(y)]);
  });
  EigResult<T> out;
  out.lambda.resize(static_cast<std::size_t>(n));
  out.v = blas::Matrix<T>(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = perm[static_cast<std::size_t>(j)];
    out.lambda[static_cast<std::size_t>(j)] = d[static_cast<std::size_t>(src)];
    for (index_t i = 0; i < n; ++i) out.v(i, j) = q(i, src);
  }
  return out;
}

}  // namespace tucker::la
