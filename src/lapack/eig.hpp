#pragma once
// Cyclic Jacobi symmetric eigendecomposition.
//
// Plays the role of LAPACK's syev in the Gram-SVD path (TuckerMPI's
// approach): the Gram matrix A*A^T is decomposed as V * diag(lambda) * V^T.
// Jacobi is as accurate as any dense symmetric eigensolver; the accuracy
// loss of Gram-SVD (paper Theorem 2) comes from *forming* the Gram matrix,
// not from the eigensolver, so the sqrt(eps) floor reproduces regardless.
// Rounding in the Gram product can make the computed matrix slightly
// indefinite; eigenvalues are returned as-is (possibly tiny negatives) and
// the caller applies the paper's sqrt(|lambda|) convention.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "blas/matrix.hpp"
#include "common/flops.hpp"
#include "common/precision.hpp"

namespace tucker::la {

template <class T>
struct EigResult {
  std::vector<T> lambda;  ///< Eigenvalues, sorted by descending |lambda|.
  blas::Matrix<T> v;      ///< Eigenvectors (columns), same order.
  int sweeps = 0;
};

/// Eigendecomposition of a symmetric n x n matrix (input not modified).
template <class T>
EigResult<T> jacobi_eig(blas::MatView<const T> a, int max_sweeps = 30) {
  using blas::index_t;
  const index_t n = a.rows();
  TUCKER_CHECK(a.cols() == n, "jacobi_eig: matrix must be square");

  blas::Matrix<T> w = blas::Matrix<T>::from(a);
  blas::Matrix<T> v = blas::Matrix<T>::identity(n);

  const T eps = precision<T>::eps;
  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    // Off-diagonal magnitude relative to the diagonal scale.
    T off = T(0), diag = T(0);
    for (index_t i = 0; i < n; ++i) {
      diag = std::max(diag, std::abs(w(i, i)));
      for (index_t j = i + 1; j < n; ++j) off = std::max(off, std::abs(w(i, j)));
    }
    if (off <= T(10) * eps * std::max(diag, std::numeric_limits<T>::min()))
      break;

    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const T apq = w(p, q);
        if (apq == T(0)) continue;
        const T app = w(p, p);
        const T aqq = w(q, q);
        if (std::abs(apq) <= eps * std::sqrt(std::abs(app * aqq)) &&
            std::abs(apq) <= eps * diag)
          continue;
        const T zeta = (aqq - app) / (T(2) * apq);
        const T t = std::copysign(
            T(1) / (std::abs(zeta) + std::sqrt(T(1) + zeta * zeta)), zeta);
        const T c = T(1) / std::sqrt(T(1) + t * t);
        const T s = c * t;
        // Two-sided rotation W = J^T W J on rows/cols p and q.
        for (index_t i = 0; i < n; ++i) {
          const T wip = w(i, p);
          const T wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (index_t j = 0; j < n; ++j) {
          const T wpj = w(p, j);
          const T wqj = w(q, j);
          w(p, j) = c * wpj - s * wqj;
          w(q, j) = s * wpj + c * wqj;
        }
        // Accumulate eigenvectors.
        for (index_t i = 0; i < n; ++i) {
          const T vip = v(i, p);
          const T viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
        tucker::add_flops(18 * n);
      }
    }
  }

  EigResult<T> out;
  out.sweeps = sweep;
  std::vector<T> lam(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) lam[static_cast<std::size_t>(i)] = w(i, i);
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return std::abs(lam[static_cast<std::size_t>(x)]) >
           std::abs(lam[static_cast<std::size_t>(y)]);
  });
  out.lambda.resize(static_cast<std::size_t>(n));
  out.v = blas::Matrix<T>(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = perm[static_cast<std::size_t>(j)];
    out.lambda[static_cast<std::size_t>(j)] =
        lam[static_cast<std::size_t>(src)];
    for (index_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace tucker::la
