#pragma once
// One-sided Jacobi SVD (singular values + left singular vectors).
//
// This plays the role of LAPACK's gesvd on the small triangular factor in
// QR-SVD (paper Sec 3.1/3.4). One-sided Jacobi orthogonalizes the columns
// of a working copy W = A * J_1 * J_2 * ... by plane rotations; at
// convergence the column norms are the singular values and the normalized
// columns are the left singular vectors. With de Rijk column pivoting it
// achieves high relative accuracy on QR/LQ-preconditioned input -- exactly
// what ST-HOSVD feeds it (the triangular factor of an unfolding) -- so the
// eps-vs-sqrt(eps) accuracy ladder of the paper (Theorems 1 and 2)
// reproduces faithfully.
//
// Caveat: on *raw dense* matrices with singular values graded over many
// orders of magnitude (i.e. without the QR preconditioning), the deep tail
// can stagnate above its true value and the relative stopping criterion may
// keep cycling; use bidiag_svd (Golub-Kahan / Demmel-Kahan) for that case.
// tests/ablation demonstrate both behaviours.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/matrix.hpp"
#include "common/flops.hpp"
#include "common/precision.hpp"
#include "common/thread_pool.hpp"

namespace tucker::la {

template <class T>
struct SvdResult {
  std::vector<T> sigma;   ///< Singular values, descending.
  blas::Matrix<T> u;      ///< Left singular vectors, m x min(m, n).
  int sweeps = 0;         ///< Jacobi sweeps used.
};

namespace detail {

/// Gram-Schmidt completion: replaces near-null columns of U (those flagged
/// in `fix`) with unit vectors orthogonal to all other columns, so U stays
/// orthonormal even when A is rank deficient (e.g. zero-padded triangles in
/// the parallel butterfly).
template <class T>
void complete_basis(blas::Matrix<T>& u, const std::vector<bool>& fix) {
  const blas::index_t m = u.rows();
  const blas::index_t k = u.cols();
  for (blas::index_t j = 0; j < k; ++j) {
    if (!fix[static_cast<std::size_t>(j)]) continue;
    // Try coordinate vectors until one survives orthogonalization.
    for (blas::index_t cand = 0; cand < m; ++cand) {
      std::vector<T> v(static_cast<std::size_t>(m), T(0));
      v[static_cast<std::size_t>(cand)] = T(1);
      for (blas::index_t l = 0; l < k; ++l) {
        if (l == j) continue;
        T d = T(0);
        for (blas::index_t i = 0; i < m; ++i)
          d += u(i, l) * v[static_cast<std::size_t>(i)];
        for (blas::index_t i = 0; i < m; ++i)
          v[static_cast<std::size_t>(i)] -= d * u(i, l);
      }
      T nrm = blas::nrm2(m, v.data(), 1);
      if (nrm > T(0.5)) {
        for (blas::index_t i = 0; i < m; ++i)
          u(i, j) = v[static_cast<std::size_t>(i)] / nrm;
        break;
      }
    }
  }
}

}  // namespace detail

/// Computes singular values and left singular vectors of A (m x n, m <= n is
/// fine; vectors span min(m,n) columns). The input view is not modified.
template <class T>
SvdResult<T> jacobi_svd(blas::MatView<const T> a, int max_sweeps = 30) {
  using blas::index_t;
  // One-sided Jacobi orthogonalizes columns, which yields the LEFT singular
  // vectors only when the matrix is tall or square; ST-HOSVD always calls
  // this on the square triangular factor. Short-fat callers should pass the
  // transpose and reinterpret the outputs.
  TUCKER_CHECK(a.rows() >= a.cols(), "jacobi_svd: pass a tall or square matrix");
  const index_t k = a.cols();

  // Column-major working copy (columns contiguous for the rotations).
  const index_t rows = a.rows();
  std::vector<T> w(static_cast<std::size_t>(rows * k));
  auto wv = blas::MatView<T>::col_major(w.data(), rows, k);
  blas::copy(a, wv);

  std::vector<T> colsq(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    T s = T(0);
    for (index_t i = 0; i < rows; ++i) s += wv(i, j) * wv(i, j);
    colsq[static_cast<std::size_t>(j)] = s;
  }

  const T eps = precision<T>::eps;
  const T tol = T(10) * eps;
  // Columns whose squared norm is below eps^2 * max are roundoff noise
  // (their singular values carry no information -- paper Sec 3.2); rotating
  // noise against noise would spin until max_sweeps without improving
  // anything, so such pairs are skipped.
  T s2max = T(0);
  for (T c : colsq) s2max = std::max(s2max, c);
  const T noise_floor = s2max * eps * eps;
  int sweep = 0;
  std::vector<T> swapcol(static_cast<std::size_t>(rows));
  for (; sweep < max_sweeps; ++sweep) {
    // de Rijk pivoting: keep columns ordered by descending norm. On
    // severely graded matrices this both speeds convergence and prevents
    // large columns from repeatedly contaminating tiny ones (preserving
    // the method's high relative accuracy).
    for (index_t p = 0; p + 1 < k; ++p) {
      index_t big = p;
      for (index_t q = p + 1; q < k; ++q)
        if (colsq[static_cast<std::size_t>(q)] >
            colsq[static_cast<std::size_t>(big)])
          big = q;
      if (big != p) {
        std::swap(colsq[static_cast<std::size_t>(p)],
                  colsq[static_cast<std::size_t>(big)]);
        T* cp = &w[static_cast<std::size_t>(p * rows)];
        T* cb = &w[static_cast<std::size_t>(big * rows)];
        std::copy(cp, cp + rows, swapcol.data());
        std::copy(cb, cb + rows, cp);
        std::copy(swapcol.data(), swapcol.data() + rows, cb);
      }
    }
    bool rotated = false;
    for (index_t p = 0; p < k - 1; ++p) {
      for (index_t q = p + 1; q < k; ++q) {
        const T app = colsq[static_cast<std::size_t>(p)];
        const T aqq = colsq[static_cast<std::size_t>(q)];
        if (app <= noise_floor && aqq <= noise_floor) continue;
        T* cp = &w[static_cast<std::size_t>(p * rows)];
        T* cq = &w[static_cast<std::size_t>(q * rows)];
        const T apq = blas::detail::fast_dot(rows, cp, cq);
        tucker::add_flops(2 * rows);
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == T(0))
          continue;
        rotated = true;
        // Rotation zeroing the (p,q) entry of W^T W.
        const T zeta = (aqq - app) / (T(2) * apq);
        const T t = std::copysign(
            T(1) / (std::abs(zeta) +
                    std::sqrt(T(1) + zeta * zeta)),
            zeta);
        const T c = T(1) / std::sqrt(T(1) + t * t);
        const T s = c * t;
        for (index_t i = 0; i < rows; ++i) {
          const T vp = cp[i];
          const T vq = cq[i];
          cp[i] = c * vp - s * vq;
          cq[i] = s * vp + c * vq;
        }
        tucker::add_flops(6 * rows);
        colsq[static_cast<std::size_t>(p)] = app - t * apq;
        colsq[static_cast<std::size_t>(q)] = aqq + t * apq;
      }
    }
    if (!rotated) break;
  }

  // Exact column norms, sorted descending.
  SvdResult<T> out;
  out.sweeps = sweep;
  std::vector<T> sig(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j)
    sig[static_cast<std::size_t>(j)] = blas::nrm2(
        rows, &w[static_cast<std::size_t>(j * rows)], index_t{1});
  std::vector<index_t> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return sig[static_cast<std::size_t>(x)] > sig[static_cast<std::size_t>(y)];
  });

  out.sigma.resize(static_cast<std::size_t>(k));
  out.u = blas::Matrix<T>(rows, k);
  // Columns whose singular value is at (or below) underflow-noise level get
  // replaced by an orthonormal completion.
  const T smax = sig.empty() ? T(0) : sig[static_cast<std::size_t>(perm[0])];
  const T tiny = smax * eps * T(rows) + std::numeric_limits<T>::min();
  std::vector<bool> fix(static_cast<std::size_t>(k), false);
  for (index_t j = 0; j < k; ++j) {
    const index_t src = perm[static_cast<std::size_t>(j)];
    const T sv = sig[static_cast<std::size_t>(src)];
    out.sigma[static_cast<std::size_t>(j)] = sv;
    if (sv <= tiny) {
      fix[static_cast<std::size_t>(j)] = true;
      continue;
    }
    const T inv = T(1) / sv;
    const T* col = &w[static_cast<std::size_t>(src * rows)];
    for (index_t i = 0; i < rows; ++i) out.u(i, j) = col[i] * inv;
  }
  detail::complete_basis(out.u, fix);
  return out;
}

namespace detail {

/// Column-panel width of the pipelined Jacobi schedule. Eight columns keep
/// a panel pair's rotation working set (16 columns) cache-resident for the
/// triangle sizes ST-HOSVD produces while still exposing nb/2 concurrent
/// pair tasks per round.
constexpr blas::index_t kJacobiPanel = 8;

}  // namespace detail

/// Blocked one-sided Jacobi with a pipelined round-robin schedule.
///
/// Same mathematics as jacobi_svd -- plane rotations orthogonalizing the
/// columns of a working copy, de Rijk descending-norm pivoting per sweep --
/// but the pair ordering is blocked so independent work can run on the
/// thread pool:
///
///   per sweep:
///     (pivot)   serial descending-norm column permutation (de Rijk);
///     (stage A) intra-panel rotations -- every panel's internal (p, q)
///               triangle, panels in parallel (disjoint column sets);
///     (stage B) inter-panel rotations -- circle-method round-robin: nb-1
///               rounds of floor(nb/2) *disjoint* panel pairs, pairs within
///               a round in parallel, full p x q cross product per pair;
///     (stage C) per-task rotation flags OR-reduced serially into the
///               sweep's convergence test.
///   post:       exact column norms (wide dot under TA), descending sort,
///               normalization, orthonormal completion of null columns --
///               identical to jacobi_svd's post-process.
///
/// Determinism: the schedule is a pure function of the matrix shape, and
/// tasks in one stage touch disjoint columns (and disjoint colsq entries),
/// so rotation decisions -- not just column bits -- are independent of
/// execution order. Serial and parallel runs are bitwise identical at any
/// thread width.
///
/// The rotation order differs from jacobi_svd's row-cyclic order, so the
/// two agree on singular values/vectors only to the method's accuracy, not
/// bitwise; jacobi_svd remains the oracle for the classic schedule.
///
/// TA selects the accumulator width of the dots, rotation coefficients and
/// column-norm bookkeeping (Accum::kWide maps T=float to TA=double at the
/// call sites in core/svd_engine.hpp); columns are stored at T, so each
/// rotated element takes one storage rounding per applied rotation, and
/// with TA = T the arithmetic per rotation is identical to jacobi_svd's.
template <class T, class TA = T>
SvdResult<T> jacobi_svd_pipelined(blas::MatView<const T> a,
                                  int max_sweeps = 30) {
  using blas::index_t;
  TUCKER_CHECK(a.rows() >= a.cols(),
               "jacobi_svd_pipelined: pass a tall or square matrix");
  const index_t k = a.cols();
  const index_t rows = a.rows();

  std::vector<T> w(static_cast<std::size_t>(rows * k));
  auto wv = blas::MatView<T>::col_major(w.data(), rows, k);
  blas::copy(a, wv);

  std::vector<TA> colsq(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    TA s = TA(0);
    for (index_t i = 0; i < rows; ++i) {
      const TA v = static_cast<TA>(wv(i, j));
      s += v * v;
    }
    colsq[static_cast<std::size_t>(j)] = s;
  }

  // Storage-precision thresholds: the columns live in T, so off-diagonal
  // mass below T's roundoff is noise no matter how wide the accumulator is.
  const TA eps = static_cast<TA>(precision<T>::eps);
  const TA tol = TA(10) * eps;
  TA s2max = TA(0);
  for (TA c : colsq) s2max = std::max(s2max, c);
  const TA noise_floor = s2max * eps * eps;

  // Rotates the (p, q) cross product of [p0,p1) x [q0,q1); overlapping
  // ranges (stage A) reduce to the upper triangle. Returns whether any
  // rotation fired. Runs on workers: touches only its own columns/colsq.
  auto rotate_block = [&](index_t p0, index_t p1, index_t q0,
                          index_t q1) -> bool {
    bool rot = false;
    for (index_t p = p0; p < p1; ++p) {
      for (index_t q = std::max(q0, p + 1); q < q1; ++q) {
        const TA app = colsq[static_cast<std::size_t>(p)];
        const TA aqq = colsq[static_cast<std::size_t>(q)];
        if (app <= noise_floor && aqq <= noise_floor) continue;
        T* cp = &w[static_cast<std::size_t>(p * rows)];
        T* cq = &w[static_cast<std::size_t>(q * rows)];
        const TA apq = blas::detail::fast_dot<T, TA>(rows, cp, cq);
        tucker::add_flops(2 * rows);
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == TA(0))
          continue;
        rot = true;
        const TA zeta = (aqq - app) / (TA(2) * apq);
        const TA t = std::copysign(
            TA(1) / (std::abs(zeta) + std::sqrt(TA(1) + zeta * zeta)), zeta);
        const TA c = TA(1) / std::sqrt(TA(1) + t * t);
        const TA s = c * t;
        for (index_t i = 0; i < rows; ++i) {
          const TA vp = static_cast<TA>(cp[i]);
          const TA vq = static_cast<TA>(cq[i]);
          cp[i] = static_cast<T>(c * vp - s * vq);
          cq[i] = static_cast<T>(s * vp + c * vq);
        }
        tucker::add_flops(6 * rows);
        colsq[static_cast<std::size_t>(p)] = app - t * apq;
        colsq[static_cast<std::size_t>(q)] = aqq + t * apq;
      }
    }
    return rot;
  };

  const index_t nb =
      (k + detail::kJacobiPanel - 1) / detail::kJacobiPanel;
  auto plo = [](index_t b) { return b * detail::kJacobiPanel; };
  auto phi = [&](index_t b) {
    return std::min(k, (b + 1) * detail::kJacobiPanel);
  };
  // Circle-method round-robin over panels (padded to even with a bye).
  const index_t nbe = nb + (nb % 2);

  int sweep = 0;
  std::vector<T> swapcol(static_cast<std::size_t>(rows));
  // Per-task rotation flags (distinct bytes -- not vector<bool> -- so
  // concurrent tasks write disjoint objects).
  std::vector<unsigned char> flags;
  std::vector<std::pair<index_t, index_t>> pairs;
  for (; sweep < max_sweeps; ++sweep) {
    for (index_t p = 0; p + 1 < k; ++p) {
      index_t big = p;
      for (index_t q = p + 1; q < k; ++q)
        if (colsq[static_cast<std::size_t>(q)] >
            colsq[static_cast<std::size_t>(big)])
          big = q;
      if (big != p) {
        std::swap(colsq[static_cast<std::size_t>(p)],
                  colsq[static_cast<std::size_t>(big)]);
        T* cp = &w[static_cast<std::size_t>(p * rows)];
        T* cb = &w[static_cast<std::size_t>(big * rows)];
        std::copy(cp, cp + rows, swapcol.data());
        std::copy(cb, cb + rows, cp);
        std::copy(swapcol.data(), swapcol.data() + rows, cb);
      }
    }

    bool rotated = false;
    const bool par = parallel::this_thread_width() > 1;

    // Stage A: intra-panel triangles, one task per panel.
    flags.assign(static_cast<std::size_t>(nb), 0);
    auto stage_a = [&](index_t lo, index_t hi) {
      for (index_t b = lo; b < hi; ++b)
        flags[static_cast<std::size_t>(b)] =
            rotate_block(plo(b), phi(b), plo(b), phi(b)) ? 1 : 0;
    };
    if (par && nb >= 2) {
      parallel::parallel_for(0, nb, 1, stage_a);
    } else {
      stage_a(0, nb);
    }
    for (unsigned char f : flags) rotated = rotated || (f != 0);

    // Stage B: nbe - 1 rounds of disjoint panel pairs.
    for (index_t round = 0; round + 1 < nbe; ++round) {
      pairs.clear();
      for (index_t i = 0; i < nbe / 2; ++i) {
        const index_t b1 =
            i == 0 ? index_t{0} : (round + i - 1) % (nbe - 1) + 1;
        const index_t b2 = (round + (nbe - 1 - i) - 1) % (nbe - 1) + 1;
        if (b1 >= nb || b2 >= nb) continue;  // bye panel
        pairs.emplace_back(std::min(b1, b2), std::max(b1, b2));
      }
      const auto np = static_cast<index_t>(pairs.size());
      flags.assign(pairs.size(), 0);
      auto stage_b = [&](index_t lo, index_t hi) {
        for (index_t t = lo; t < hi; ++t) {
          const auto [bp, bq] = pairs[static_cast<std::size_t>(t)];
          flags[static_cast<std::size_t>(t)] =
              rotate_block(plo(bp), phi(bp), plo(bq), phi(bq)) ? 1 : 0;
        }
      };
      if (par && np >= 2) {
        parallel::parallel_for(0, np, 1, stage_b);
      } else {
        stage_b(0, np);
      }
      for (unsigned char f : flags) rotated = rotated || (f != 0);
    }
    if (!rotated) break;
  }

  SvdResult<T> out;
  out.sweeps = sweep;
  std::vector<T> sig(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j)
    sig[static_cast<std::size_t>(j)] = static_cast<T>(blas::nrm2<T, TA>(
        rows, &w[static_cast<std::size_t>(j * rows)], index_t{1}));
  std::vector<index_t> perm(static_cast<std::size_t>(k));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return sig[static_cast<std::size_t>(x)] > sig[static_cast<std::size_t>(y)];
  });

  out.sigma.resize(static_cast<std::size_t>(k));
  out.u = blas::Matrix<T>(rows, k);
  const T eps_s = precision<T>::eps;
  const T smax = sig.empty() ? T(0) : sig[static_cast<std::size_t>(perm[0])];
  const T tiny = smax * eps_s * T(rows) + std::numeric_limits<T>::min();
  std::vector<bool> fix(static_cast<std::size_t>(k), false);
  for (index_t j = 0; j < k; ++j) {
    const index_t src = perm[static_cast<std::size_t>(j)];
    const T sv = sig[static_cast<std::size_t>(src)];
    out.sigma[static_cast<std::size_t>(j)] = sv;
    if (sv <= tiny) {
      fix[static_cast<std::size_t>(j)] = true;
      continue;
    }
    const T inv = T(1) / sv;
    const T* col = &w[static_cast<std::size_t>(src * rows)];
    for (index_t i = 0; i < rows; ++i) out.u(i, j) = col[i] * inv;
  }
  detail::complete_basis(out.u, fix);
  return out;
}

}  // namespace tucker::la
