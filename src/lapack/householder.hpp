#pragma once
// Householder reflector generation and application.
//
// A reflector H = I - tau * v * v^T with v(0) = 1 annihilates all but the
// first entry of a vector. These are the building blocks of geqrf/gelqf and
// the structured tpqrt-style factorizations. Generation follows the LAPACK
// larfg conventions (sign chosen to avoid cancellation, scaled norms to
// avoid overflow), which is what makes the QR preprocessing step of QR-SVD
// backward stable (paper Theorem 1).

#include <cmath>
#include <limits>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/matview.hpp"
#include "common/flops.hpp"
#include "common/thread_pool.hpp"
#include "common/tuning.hpp"
#include "common/workspace.hpp"

namespace tucker::la {

using blas::index_t;
using blas::MatView;

/// Generates a Householder reflector for the (n+1)-vector [alpha; x].
/// On return, alpha holds the resulting beta = -sign(alpha)*||[alpha;x]||,
/// x holds the tail of v (v(0) = 1 implicitly), and the return value is tau.
/// tau = 0 (H = I) when the tail is already zero.
template <class T>
T make_reflector(T& alpha, index_t n, T* x, index_t incx) {
  T xnorm = blas::nrm2(n, x, incx);
  if (xnorm == T(0)) return T(0);
  // beta = -sign(alpha) * hypot(alpha, xnorm), computed stably.
  T beta = -std::copysign(static_cast<T>(std::hypot(alpha, xnorm)), alpha);

  // LAPACK larfg-style rescue: if beta is below the "safe minimum"
  // (min_normal / eps), 1/(alpha - beta) would overflow. Scale the vector
  // up until beta is safe, then scale the final beta back down. Subnormal
  // columns genuinely occur in single precision on heavily truncated data.
  const T safmin =
      std::numeric_limits<T>::min() / std::numeric_limits<T>::epsilon();
  int rescales = 0;
  if (std::abs(beta) < safmin) {
    const T rsafmn = T(1) / safmin;
    do {
      ++rescales;
      blas::scal(n, rsafmn, x, incx);
      beta *= rsafmn;
      alpha *= rsafmn;
    } while (std::abs(beta) < safmin && rescales < 20);
    xnorm = blas::nrm2(n, x, incx);
    beta = -std::copysign(static_cast<T>(std::hypot(alpha, xnorm)), alpha);
  }

  const T tau = (beta - alpha) / beta;
  blas::scal(n, T(1) / (alpha - beta), x, incx);
  for (int k = 0; k < rescales; ++k) beta *= safmin;
  alpha = beta;
  return tau;
}

/// Applies H = I - tau * [1; v] * [1; v]^T from the left to the matrix
/// [top; rest], where `top` is a single row and `rest` has the same number
/// of columns. v is the (rest.rows() x 1) column stored in vcol.
///
/// Two loop orders are provided so the stride pattern of `rest` (column-major
/// trailing blocks in geqrf-on-transpose vs row-major unfolding blocks)
/// always gets a contiguous inner loop.
template <class T>
void apply_reflector(T tau, MatView<const T> vcol, MatView<T> top,
                     MatView<T> rest) {
  if (tau == T(0) || top.cols() == 0) return;
  const index_t n = top.cols();
  const index_t m = rest.rows();
  TUCKER_DCHECK(vcol.rows() == m && vcol.cols() == 1,
                "apply_reflector: v shape");
  TUCKER_DCHECK(rest.cols() == n, "apply_reflector: width mismatch");
  tucker::add_flops(4 * m * n);

  // The update is independent per column of [top; rest], so both fast
  // paths fan out over column ranges: every w(j) keeps its serial i-order
  // accumulation, and writes are disjoint per column, making the result
  // bitwise independent of the thread count. Reflector applications inside
  // small panels stay below the flop threshold and run serially.
  const bool par = parallel::this_thread_width() > 1 &&
                   4.0 * static_cast<double>(m) * n >= tune::par_flop_threshold();

  if (rest.col_stride() == 1 && m > 0) {
    // Row-contiguous rest: accumulate w = top^T + rest^T v row by row,
    // then update row by row. Needs an n-sized scratch vector (arena; each
    // column range initializes its own slice inside run_cols).
    Workspace& ws = Workspace::local();
    auto scratch = ws.frame();
    T* w = ws.get<T>(static_cast<std::size_t>(n));
    auto run_cols = [&](index_t jlo, index_t jhi) {
      const index_t jn = jhi - jlo;
      for (index_t j = jlo; j < jhi; ++j) w[j] = top(0, j);
      for (index_t i = 0; i < m; ++i) {
        const T vi = vcol(i, 0);
        const T* r = &rest(i, jlo);
        T* wj = w + jlo;
        for (index_t j = 0; j < jn; ++j) wj[j] += vi * r[j];
      }
      for (index_t j = jlo; j < jhi; ++j) {
        w[j] *= tau;
        top(0, j) -= w[j];
      }
      for (index_t i = 0; i < m; ++i) {
        const T vi = vcol(i, 0);
        T* r = &rest(i, jlo);
        const T* wj = w + jlo;
        for (index_t j = 0; j < jn; ++j) r[j] -= wj[j] * vi;
      }
    };
    if (par) {
      parallel::parallel_for(0, n, 64, run_cols);
    } else {
      run_cols(0, n);
    }
  } else if (rest.row_stride() == 1 && vcol.row_stride() == 1) {
    // Column-contiguous rest (the col-major panel case): per-column dot
    // (multi-accumulator, vectorizable) followed by a contiguous axpy.
    const T* v = &vcol(0, 0);
    auto run_cols = [&](index_t jlo, index_t jhi) {
      for (index_t j = jlo; j < jhi; ++j) {
        T* r = &rest(0, j);
        T w = top(0, j) + blas::detail::fast_dot(m, v, r);
        w *= tau;
        top(0, j) -= w;
        for (index_t i = 0; i < m; ++i) r[i] -= w * v[i];
      }
    };
    if (par) {
      parallel::parallel_for(0, n, 16, run_cols);
    } else {
      run_cols(0, n);
    }
  } else {
    // Fully generic fallback.
    for (index_t j = 0; j < n; ++j) {
      T w = top(0, j);
      for (index_t i = 0; i < m; ++i) w += vcol(i, 0) * rest(i, j);
      w *= tau;
      top(0, j) -= w;
      for (index_t i = 0; i < m; ++i) rest(i, j) -= w * vcol(i, 0);
    }
  }
}

}  // namespace tucker::la
