#pragma once
// Bidiagonalization SVD: Householder reduction to upper-bidiagonal form
// followed by the Demmel-Kahan zero-shift QR sweep.
//
// This is the classical gesvd-style alternative to the one-sided Jacobi
// solver in svd.hpp, provided as a second backend for the small SVD of the
// triangular factor in QR-SVD. The zero-shift sweep is the one Demmel and
// Kahan showed computes every singular value -- even the tiny ones -- to
// high *relative* accuracy, which fits this paper's accuracy story; its
// convergence is linear rather than cubic, which is immaterial at the
// (mode-size) x (mode-size) matrices ST-HOSVD produces.
//
// Only singular values and left singular vectors are computed (right
// rotations are discarded), matching the needs of ST-HOSVD.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "blas/matrix.hpp"
#include "common/flops.hpp"
#include "common/precision.hpp"
#include "lapack/householder.hpp"
#include "lapack/qr.hpp"
#include "lapack/svd.hpp"

namespace tucker::la {

namespace detail {

/// BLAS rotg-style Givens generator: returns (c, s, r) with
/// c*f + s*g = r and -s*f + c*g = 0, r >= 0.
template <class T>
void givens(T f, T g, T& c, T& s, T& r) {
  if (g == T(0)) {
    c = T(1);
    s = T(0);
    r = std::abs(f);
    if (f < T(0)) c = T(-1);
    return;
  }
  if (f == T(0)) {
    c = T(0);
    s = g > T(0) ? T(1) : T(-1);
    r = std::abs(g);
    return;
  }
  r = static_cast<T>(std::hypot(f, g));
  c = f / r;
  s = g / r;
}

/// Applies the rotation (c, s) to columns (j, j+1) of U:
/// (u_j, u_{j+1}) <- (c u_j + s u_{j+1}, -s u_j + c u_{j+1}).
template <class T>
void rotate_columns(blas::Matrix<T>& u, blas::index_t j, T c, T s) {
  const blas::index_t m = u.rows();
  for (blas::index_t i = 0; i < m; ++i) {
    const T a = u(i, j);
    const T b = u(i, j + 1);
    u(i, j) = c * a + s * b;
    u(i, j + 1) = -s * a + c * b;
  }
  tucker::add_flops(6 * m);
}

}  // namespace detail

template <class T>
struct BidiagSvdResult {
  std::vector<T> sigma;  ///< Singular values, descending.
  blas::Matrix<T> u;     ///< Left singular vectors, m x n.
  int sweeps = 0;        ///< Zero-shift QR sweeps performed.
};

/// SVD of a (tall or square) matrix via bidiagonalization + zero-shift QR.
template <class T>
BidiagSvdResult<T> bidiag_svd(blas::MatView<const T> a,
                              int max_sweeps_per_value = 60) {
  using blas::index_t;
  const index_t m = a.rows();
  const index_t n = a.cols();
  TUCKER_CHECK(m >= n, "bidiag_svd: pass a tall or square matrix");
  TUCKER_CHECK(n >= 1, "bidiag_svd: empty matrix");

  // ---- Householder bidiagonalization (gebrd-style, in place) ----
  blas::Matrix<T> w = blas::Matrix<T>::from(a);
  std::vector<T> d(static_cast<std::size_t>(n), T(0));
  std::vector<T> e(static_cast<std::size_t>(n > 1 ? n - 1 : 0), T(0));
  std::vector<T> tauq(static_cast<std::size_t>(n), T(0));

  for (index_t j = 0; j < n; ++j) {
    // Left reflector annihilating below-diagonal of column j.
    const index_t tail = m - j - 1;
    tauq[static_cast<std::size_t>(j)] = make_reflector(
        w(j, j), tail, tail > 0 ? &w(j + 1, j) : nullptr, w.view().row_stride());
    if (j + 1 < n) {
      auto vcol = w.view().block(j + 1, j, tail, 1);
      auto top = w.view().block(j, j + 1, 1, n - j - 1);
      auto rest = w.view().block(j + 1, j + 1, tail, n - j - 1);
      apply_reflector(tauq[static_cast<std::size_t>(j)],
                      blas::MatView<const T>(vcol), top, rest);
    }
    d[static_cast<std::size_t>(j)] = w(j, j);

    if (j + 2 < n) {
      // Right reflector annihilating row j beyond the superdiagonal;
      // applied via transposed views (rows become columns).
      const index_t rtail = n - j - 2;
      const T taup = make_reflector(w(j, j + 1), rtail, &w(j, j + 2),
                                    w.view().col_stride());
      auto wt = w.view().t();  // n x m view
      auto vcol = wt.block(j + 2, j, rtail, 1);
      auto top = wt.block(j + 1, j + 1, 1, m - j - 1);
      auto rest = wt.block(j + 2, j + 1, rtail, m - j - 1);
      apply_reflector(taup, blas::MatView<const T>(vcol), top, rest);
      e[static_cast<std::size_t>(j)] = w(j, j + 1);
    } else if (j + 1 < n) {
      e[static_cast<std::size_t>(j)] = w(j, j + 1);
    }
  }

  // U0 = product of the left reflectors applied to the leading n columns of
  // the identity (the reflectors sit in w's strict lower triangle, exactly
  // the geqrf storage form_q expects).
  blas::Matrix<T> u = form_q(blas::MatView<const T>(w.view()), tauq, n);

  // ---- QR iteration on the bidiagonal ----
  // Shifted Golub-Kahan bulge chases for cubic convergence; the
  // Demmel-Kahan zero-shift sweep (high relative accuracy) when the
  // Wilkinson shift is negligible. Work on a normalized copy so squared
  // quantities cannot overflow.
  const T eps = precision<T>::eps;
  T scale = T(0);
  for (T v : d) scale = std::max(scale, std::abs(v));
  for (T v : e) scale = std::max(scale, std::abs(v));
  if (scale > T(0)) {
    for (T& v : d) v /= scale;
    for (T& v : e) v /= scale;
  }

  int sweeps = 0;
  const long max_total =
      static_cast<long>(max_sweeps_per_value) * static_cast<long>(n);
  index_t hi = n - 1;
  while (hi > 0) {
    // Deflate negligible superdiagonals.
    for (index_t k = 0; k < hi; ++k) {
      if (std::abs(e[static_cast<std::size_t>(k)]) <=
          eps * (std::abs(d[static_cast<std::size_t>(k)]) +
                 std::abs(d[static_cast<std::size_t>(k + 1)])))
        e[static_cast<std::size_t>(k)] = T(0);
    }
    if (e[static_cast<std::size_t>(hi - 1)] == T(0)) {
      --hi;
      continue;
    }
    if (sweeps++ > max_total) break;  // give up gracefully; values still usable

    // Active block [lo, hi] with nonzero superdiagonals.
    index_t lo = hi - 1;
    while (lo > 0 && e[static_cast<std::size_t>(lo - 1)] != T(0)) --lo;

    auto dd = [&](index_t i) -> T& { return d[static_cast<std::size_t>(i)]; };
    auto ee = [&](index_t i) -> T& { return e[static_cast<std::size_t>(i)]; };

    // Wilkinson shift: eigenvalue of the trailing 2x2 of B^T B closest to
    // its (2,2) entry.
    const T t11 =
        dd(hi - 1) * dd(hi - 1) + (hi - 1 > lo ? ee(hi - 2) * ee(hi - 2) : T(0));
    const T t22 = dd(hi) * dd(hi) + ee(hi - 1) * ee(hi - 1);
    const T t12 = dd(hi - 1) * ee(hi - 1);
    T mu = t22;
    if (t12 != T(0)) {
      const T half = (t11 - t22) / 2;
      mu = t22 - t12 * t12 /
                     (half + std::copysign(
                                 static_cast<T>(std::hypot(half, t12)), half));
    }

    if (std::abs(mu) <= eps * std::max(t11, t22)) {
      // Zero-shift sweep (Demmel-Kahan): guaranteed relative accuracy.
      T cs = T(1), oldcs = T(1);
      T sn = T(0), oldsn = T(0);
      T r = T(0);
      for (index_t i = lo; i < hi; ++i) {
        detail::givens(dd(i) * cs, ee(i), cs, sn, r);
        if (i != lo) ee(i - 1) = oldsn * r;
        detail::givens(oldcs * r, dd(i + 1) * sn, oldcs, oldsn, dd(i));
        detail::rotate_columns(u, i, oldcs, oldsn);
      }
      const T h = dd(hi) * cs;
      ee(hi - 1) = h * oldsn;
      dd(hi) = h * oldcs;
      continue;
    }

    // Shifted bulge chase. Right rotations (columns) are discarded; left
    // rotations update U.
    T c, s, r;
    T f = dd(lo) * dd(lo) - mu;
    T g = dd(lo) * ee(lo);
    for (index_t k = lo; k < hi; ++k) {
      detail::givens(f, g, c, s, r);
      if (k > lo) ee(k - 1) = r;
      // Right rotation on columns (k, k+1).
      f = c * dd(k) + s * ee(k);
      ee(k) = -s * dd(k) + c * ee(k);
      g = s * dd(k + 1);
      dd(k + 1) = c * dd(k + 1);
      // Left rotation on rows (k, k+1), zeroing the bulge g.
      detail::givens(f, g, c, s, r);
      dd(k) = r;
      detail::rotate_columns(u, k, c, s);
      f = c * ee(k) + s * dd(k + 1);
      dd(k + 1) = -s * ee(k) + c * dd(k + 1);
      if (k < hi - 1) {
        g = s * ee(k + 1);
        ee(k + 1) = c * ee(k + 1);
      }
    }
    ee(hi - 1) = f;
  }

  if (scale > T(0)) {
    for (T& v : d) v *= scale;
  }

  // ---- signs, sorting ----
  std::vector<T> sig(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    T v = d[static_cast<std::size_t>(j)];
    if (v < T(0)) {
      // Flip the sign into the (discarded) right factor... the left vector
      // stays; sigma_j = |v| with u_j unchanged only if the sign can be
      // absorbed on the right, which it always can.
      v = -v;
    }
    sig[static_cast<std::size_t>(j)] = v;
  }
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return sig[static_cast<std::size_t>(x)] > sig[static_cast<std::size_t>(y)];
  });

  BidiagSvdResult<T> out;
  out.sweeps = sweeps;
  out.sigma.resize(static_cast<std::size_t>(n));
  out.u = blas::Matrix<T>(m, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = perm[static_cast<std::size_t>(j)];
    out.sigma[static_cast<std::size_t>(j)] = sig[static_cast<std::size_t>(src)];
    for (index_t i = 0; i < m; ++i) out.u(i, j) = u(i, src);
  }
  return out;
}

}  // namespace tucker::la
