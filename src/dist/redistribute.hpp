#pragma once
// Fiber redistribution of a tensor unfolding (paper Alg 3, line 7).
//
// When P_n > 1, the mode-n unfolding is not in a 1D distribution: each
// mode-n processor fiber collectively owns an (I_n x C) submatrix split
// *row-wise* across the fiber (C = product of the fiber-shared local
// dimensions of the other modes). An all-to-all within every fiber converts
// this to a 1D *column* distribution: afterwards each rank owns all I_n
// rows of C/P_n columns, stored column-major -- exactly the input the local
// LQ (gelq) or local Gram (syrk) kernels want. This is the same
// redistribution TuckerMPI uses for its Gram algorithm [6, Alg 4].

#include <vector>

#include "blas/matview.hpp"
#include "dist/dist_tensor.hpp"
#include "tensor/tensor.hpp"

namespace tucker::dist {

/// Owning column-major matrix buffer (the redistributed unfolding).
template <class T>
struct ColMatrix {
  std::vector<T> data;
  index_t rows = 0;
  index_t cols = 0;

  blas::MatView<T> view() {
    return blas::MatView<T>::col_major(data.data(), rows, cols);
  }
  blas::MatView<const T> view() const {
    return blas::MatView<const T>::col_major(data.data(), rows, cols);
  }
};

/// Collective over the mode-n fiber communicator: returns this rank's
/// column slice (all I_n global rows) of the fiber's unfolding submatrix.
template <class T>
ColMatrix<T> redistribute_unfolding(const DistTensor<T>& y, std::size_t n) {
  mpi::Comm& fiber = y.fiber_comm(n);
  const index_t pn = fiber.size();
  const tensor::Tensor<T>& loc = y.local();
  const index_t my_rows = loc.dim(n);
  const index_t before = tensor::prod_before(loc.dims(), n);
  const index_t after = tensor::prod_after(loc.dims(), n);
  const index_t total_cols = before * after;  // same on every fiber rank
  const index_t global_rows = y.global_dim(n);
  const int me = fiber.rank();

  // Pack: destination q gets my rows of its column slice, column-major
  // (consecutive columns, each a contiguous my_rows segment).
  std::vector<T> sendbuf(static_cast<std::size_t>(my_rows * total_cols));
  std::vector<std::int64_t> scounts(static_cast<std::size_t>(pn)),
      sdispls(static_cast<std::size_t>(pn)),
      rcounts(static_cast<std::size_t>(pn)),
      rdispls(static_cast<std::size_t>(pn));
  {
    std::int64_t off = 0;
    for (index_t q = 0; q < pn; ++q) {
      const Range cr = block_range(total_cols, pn, q);
      sdispls[static_cast<std::size_t>(q)] = off;
      scounts[static_cast<std::size_t>(q)] = my_rows * cr.size();
      for (index_t c = cr.lo; c < cr.hi; ++c) {
        const index_t cb = c % before;
        const index_t j = c / before;
        auto blk = tensor::unfolding_block(loc, n, j);
        for (index_t i = 0; i < my_rows; ++i)
          sendbuf[static_cast<std::size_t>(off++)] = blk(i, cb);
      }
    }
  }

  const Range mycols = block_range(total_cols, pn, me);
  {
    std::int64_t off = 0;
    for (index_t r = 0; r < pn; ++r) {
      const index_t rrows = block_range(global_rows, pn, r).size();
      rdispls[static_cast<std::size_t>(r)] = off;
      rcounts[static_cast<std::size_t>(r)] = rrows * mycols.size();
      off += rrows * mycols.size();
    }
  }

  std::vector<T> recvbuf(
      static_cast<std::size_t>(global_rows * mycols.size()));
  fiber.alltoallv(sendbuf.data(), scounts, sdispls, recvbuf.data(), rcounts,
                  rdispls);

  // Unpack into the column-major result: source r supplied its row range of
  // each of my columns.
  ColMatrix<T> z;
  z.rows = global_rows;
  z.cols = mycols.size();
  z.data.resize(static_cast<std::size_t>(z.rows * z.cols));
  for (index_t r = 0; r < pn; ++r) {
    const Range rr = block_range(global_rows, pn, r);
    const T* src =
        recvbuf.data() + rdispls[static_cast<std::size_t>(r)];
    for (index_t c = 0; c < z.cols; ++c)
      for (index_t i = 0; i < rr.size(); ++i)
        z.data[static_cast<std::size_t>(c * z.rows + rr.lo + i)] = *src++;
  }
  return z;
}

}  // namespace tucker::dist
