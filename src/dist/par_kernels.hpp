#pragma once
// Distributed kernels of parallel ST-HOSVD: the Gram matrix of an unfolding
// (TuckerMPI's approach, [6] Alg 4), the LQ of an unfolding via butterfly
// TSQR (paper Alg 3), and the TTM truncation with fiber reduction.

#include <string>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/matrix.hpp"
#include "common/workspace.hpp"
#include "dist/dist_tensor.hpp"
#include "dist/redistribute.hpp"
#include "lapack/qr.hpp"
#include "lapack/tpqrt.hpp"
#include "tensor/gram.hpp"
#include "tensor/tensor_lq.hpp"
#include "tensor/ttm.hpp"

namespace tucker::dist {

namespace detail {

/// Packs the lower triangle (including diagonal) of an m x m matrix.
template <class T>
void pack_lower(const blas::Matrix<T>& l, std::vector<T>& buf) {
  const index_t m = l.rows();
  buf.resize(static_cast<std::size_t>(m * (m + 1) / 2));
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j <= i; ++j) buf[k++] = l(i, j);
}

template <class T>
void unpack_lower(const std::vector<T>& buf, blas::Matrix<T>& l) {
  const index_t m = l.rows();
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j <= i; ++j) l(i, j) = buf[k++];
    for (index_t j = i + 1; j < m; ++j) l(i, j) = T(0);
  }
}

/// Merges two lower-triangular factors: first <- L factor of LQ([first
/// second]), exploiting that both blocks are triangular (paper Sec 3.4).
/// `second` is destroyed (overwritten with reflectors).
template <class T>
void merge_triangles(blas::Matrix<T>& first, blas::Matrix<T>& second) {
  std::vector<T> tau;
  la::tplqt(first.view(), second.view(), tau, la::Pentagon::kTriangular);
  // Clear any reflector fill above the diagonal is unnecessary: tplqt only
  // writes the lower triangle of `first`.
}

/// Butterfly (all-reduce style) TSQR reduction over lower-triangular
/// factors: on return every rank of `comm` holds the triangular factor of
/// the stacked global matrix. Non-power-of-two sizes fold the excess ranks
/// into the largest power-of-two subset first and fan the result back out.
template <class T>
void butterfly_lq_reduce(blas::Matrix<T>& l, mpi::Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const index_t m = l.rows();
  const int rank = comm.rank();
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;

  std::vector<T> sendbuf, recvbuf;
  const std::int64_t tlen = m * (m + 1) / 2;
  blas::Matrix<T> other(m, m);

  constexpr int kFoldTag = 901, kUnfoldTag = 902, kStepTag = 910;

  if (rank >= pof2) {
    // Excess rank: contribute my triangle, then wait for the result.
    pack_lower(l, sendbuf);
    comm.send(rank - pof2, sendbuf.data(), tlen, kFoldTag);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank - pof2, recvbuf.data(), tlen, kUnfoldTag);
    unpack_lower(recvbuf, l);
    return;
  }
  if (rank + pof2 < p) {
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank + pof2, recvbuf.data(), tlen, kFoldTag);
    unpack_lower(recvbuf, other);
    merge_triangles(l, other);  // lower world-rank's factor goes first
  }

  for (int mask = 1, step = 0; mask < pof2; mask <<= 1, ++step) {
    const int partner = rank ^ mask;
    pack_lower(l, sendbuf);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.sendrecv(partner, sendbuf.data(), tlen, recvbuf.data(), tlen,
                  kStepTag + step);
    unpack_lower(recvbuf, other);
    if (rank < partner) {
      merge_triangles(l, other);
    } else {
      // Both partners compute LQ([L_low L_high]) so the reduction yields a
      // bitwise-identical factor everywhere.
      merge_triangles(other, l);
      l = other;
    }
  }

  if (rank + pof2 < p) {
    pack_lower(l, sendbuf);
    comm.send(rank + pof2, sendbuf.data(), tlen, kUnfoldTag);
  }
}

}  // namespace detail

/// Gram matrix of the global mode-n unfolding, replicated on every rank:
/// local syrk (after fiber redistribution when P_n > 1) plus a world
/// allreduce. This is TuckerMPI's kernel; its cost is n*m^2 local flops.
template <class T>
blas::Matrix<T> par_gram(const DistTensor<T>& y, std::size_t n) {
  const index_t m = y.global_dim(n);
  blas::Matrix<T> g(m, m);
  if (y.grid().dim(n) == 1) {
    if (y.local().size() > 0) g = tensor::gram_of_unfolding(y.local(), n);
  } else {
    ColMatrix<T> z = redistribute_unfolding(y, n);
    if (z.cols > 0)
      blas::syrk(T(1), static_cast<blas::MatView<const T>>(z.view()), T(0),
                 g.view());
  }
  y.world().allreduce(g.data(), m * m, mpi::Op::kSum);
  y.world().sync_cpu_clock();  // attribute trailing compute to this region
  return g;
}

/// Triangular LQ factor of the global mode-n unfolding, replicated on every
/// rank (paper Alg 3): local LQ tailored to the data layout, then a
/// butterfly TSQR reduction over all ranks. The result is the m x m lower
/// triangle; ranks whose local slice was tall contribute zero-padded
/// triangles (paper Sec 3.4). Costs ~2*n*m^2 local flops -- twice Gram.
template <class T>
blas::Matrix<T> par_tensor_lq(const DistTensor<T>& y, std::size_t n) {
  const index_t m = y.global_dim(n);
  blas::Matrix<T> l(m, m);
  if (y.grid().dim(n) == 1) {
    if (y.local().size() > 0) {
      blas::Matrix<T> lt = tensor::tensor_lq(y.local(), n);
      blas::copy(blas::MatView<const T>(lt.view()),
                 l.view().block(0, 0, lt.rows(), lt.cols()));
    }
  } else {
    ColMatrix<T> z = redistribute_unfolding(y, n);
    if (z.cols > 0) {
      std::vector<T> tau;
      la::gelqf(z.view(), tau);
      blas::Matrix<T> lt = la::extract_l<T>(blas::MatView<const T>(z.view()));
      blas::copy(blas::MatView<const T>(lt.view()),
                 l.view().block(0, 0, lt.rows(), lt.cols()));
    }
  }
  detail::butterfly_lq_reduce(l, y.world());
  y.world().sync_cpu_clock();  // attribute trailing compute to this region
  return l;
}

/// Distributed TTM truncation into a caller-owned tensor: Y = X x_n U^T
/// where U (I_n x R) is replicated. Local partial products with the owned
/// row slice of U, a fiber reduction, and extraction of the owned slice of
/// the R rows keep the block distribution (same grid, mode-n dimension now
/// R). `out` must share x's grid (an empty_clone or a previous output) and
/// is re-dimensioned in place, so cycling the same out through repeated
/// truncations reuses its local allocation.
template <class T>
void par_ttm_truncate_into(const DistTensor<T>& x, std::size_t n,
                           blas::MatView<const T> u, DistTensor<T>& out) {
  TUCKER_CHECK(u.rows() == x.global_dim(n), "par_ttm: U row mismatch");
  TUCKER_CHECK(&x != &out, "par_ttm: x and out must be distinct");
  const index_t r = u.cols();
  out.reshape_mode_of(x, n, r);

  // Partial product with my row slice of U: tmp = X_loc x_n (U_rows)^T,
  // giving all R rows of my column set. The partial tensor and the pack
  // buffers below are stashed per rank-thread so every truncation of the
  // parallel ST-HOSVD sweep reuses them.
  Workspace& ws = Workspace::local();
  const Range rows = x.mode_range(n);
  auto usub = u.block(rows.lo, 0, rows.size(), r);
  auto& tmp = ws.stash<tensor::Tensor<T>>("dist.par_ttm.partial");
  tensor::ttm_into(x.local(), n, blas::MatView<const T>(usub.t()), tmp);

  const index_t pn = x.grid().dim(n);
  if (pn > 1 && tmp.size() > 0) {
    // Reduce-scatter across the fiber: sum the partials and leave each rank
    // exactly its block of the R rows (TuckerMPI's approach). Pack the
    // partial so each destination's rows are contiguous; the received block
    // is already in the output tensor's natural layout.
    mpi::Comm& fiber = x.fiber_comm(n);
    const index_t before = tensor::prod_before(tmp.dims(), n);
    const index_t nblocks = tensor::unfolding_num_blocks(tmp, n);
    auto& sendbuf = ws.stash<std::vector<T>>("dist.par_ttm.sendbuf");
    sendbuf.resize(static_cast<std::size_t>(tmp.size()));
    auto& counts = ws.stash<std::vector<std::int64_t>>("dist.par_ttm.counts");
    counts.resize(static_cast<std::size_t>(pn));
    {
      std::int64_t off = 0;
      for (index_t q = 0; q < pn; ++q) {
        const Range qr = block_range(r, pn, q);
        counts[static_cast<std::size_t>(q)] = qr.size() * before * nblocks;
        for (index_t j = 0; j < nblocks; ++j) {
          auto blk = tensor::unfolding_block(tmp, n, j);
          for (index_t i = qr.lo; i < qr.hi; ++i)
            for (index_t c = 0; c < before; ++c)
              sendbuf[static_cast<std::size_t>(off++)] = blk(i, c);
        }
      }
    }
    fiber.reduce_scatter(sendbuf.data(), out.local().data(), counts);
    return;
  }

  // P_n == 1 (or empty): keep my block slice of the R rows directly.
  const Range orows = out.mode_range(n);
  const index_t nblocks = tensor::unfolding_num_blocks(out.local(), n);
  for (index_t j = 0; j < nblocks; ++j) {
    auto src = tensor::unfolding_block(tmp, n, j);
    auto dst = tensor::unfolding_block(out.local(), n, j);
    if (dst.rows() > 0 && dst.cols() > 0)
      blas::copy(blas::MatView<const T>(
                     src.block(orows.lo, 0, orows.size(), src.cols())),
                 dst);
  }
}

/// Value-returning convenience wrapper around par_ttm_truncate_into.
template <class T>
DistTensor<T> par_ttm_truncate(const DistTensor<T>& x, std::size_t n,
                               blas::MatView<const T> u) {
  DistTensor<T> out = x.empty_clone();
  par_ttm_truncate_into(x, n, u, out);
  return out;
}

}  // namespace tucker::dist
