#pragma once
// Distributed kernels of parallel ST-HOSVD: the Gram matrix of an unfolding
// (TuckerMPI's approach, [6] Alg 4), the LQ of an unfolding via butterfly
// TSQR (paper Alg 3), the TTM truncation with fiber reduction, and the
// randomized range-finder SVD (par_rand_svd) that sketches each rank's
// owned slab locally and reuses the tpqrt butterfly on the tall-skinny
// sketch.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/matrix.hpp"
#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "core/truncation.hpp"
#include "dist/dist_tensor.hpp"
#include "dist/redistribute.hpp"
#include "lapack/qr.hpp"
#include "lapack/tpqrt.hpp"
#include "lapack/tridiag_eig.hpp"
#include "tensor/gram.hpp"
#include "tensor/sketch.hpp"
#include "tensor/tensor_lq.hpp"
#include "tensor/ttm.hpp"

namespace tucker::dist {

namespace detail {

/// Packs the lower triangle (including diagonal) of an m x m matrix.
template <class T>
void pack_lower(const blas::Matrix<T>& l, std::vector<T>& buf) {
  const index_t m = l.rows();
  buf.resize(static_cast<std::size_t>(m * (m + 1) / 2));
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j <= i; ++j) buf[k++] = l(i, j);
}

template <class T>
void unpack_lower(const std::vector<T>& buf, blas::Matrix<T>& l) {
  const index_t m = l.rows();
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j <= i; ++j) l(i, j) = buf[k++];
    for (index_t j = i + 1; j < m; ++j) l(i, j) = T(0);
  }
}

/// Merges two lower-triangular factors: first <- L factor of LQ([first
/// second]), exploiting that both blocks are triangular (paper Sec 3.4).
/// `second` is destroyed (overwritten with reflectors).
template <class T>
void merge_triangles(blas::Matrix<T>& first, blas::Matrix<T>& second) {
  std::vector<T> tau;
  la::tplqt(first.view(), second.view(), tau, la::Pentagon::kTriangular);
  // Clear any reflector fill above the diagonal is unnecessary: tplqt only
  // writes the lower triangle of `first`.
}

/// Butterfly (all-reduce style) TSQR reduction over lower-triangular
/// factors: on return every rank of `comm` holds the triangular factor of
/// the stacked global matrix. Non-power-of-two sizes fold the excess ranks
/// into the largest power-of-two subset first and fan the result back out.
template <class T>
void butterfly_lq_reduce(blas::Matrix<T>& l, mpi::Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const index_t m = l.rows();
  const int rank = comm.rank();
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;

  std::vector<T> sendbuf, recvbuf;
  const std::int64_t tlen = m * (m + 1) / 2;
  blas::Matrix<T> other(m, m);

  constexpr int kFoldTag = 901, kUnfoldTag = 902, kStepTag = 910;

  if (rank >= pof2) {
    // Excess rank: contribute my triangle, then wait for the result.
    pack_lower(l, sendbuf);
    comm.send(rank - pof2, sendbuf.data(), tlen, kFoldTag);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank - pof2, recvbuf.data(), tlen, kUnfoldTag);
    unpack_lower(recvbuf, l);
    return;
  }
  if (rank + pof2 < p) {
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank + pof2, recvbuf.data(), tlen, kFoldTag);
    unpack_lower(recvbuf, other);
    merge_triangles(l, other);  // lower world-rank's factor goes first
  }

  for (int mask = 1, step = 0; mask < pof2; mask <<= 1, ++step) {
    const int partner = rank ^ mask;
    pack_lower(l, sendbuf);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.sendrecv(partner, sendbuf.data(), tlen, recvbuf.data(), tlen,
                  kStepTag + step);
    unpack_lower(recvbuf, other);
    if (rank < partner) {
      merge_triangles(l, other);
    } else {
      // Both partners compute LQ([L_low L_high]) so the reduction yields a
      // bitwise-identical factor everywhere.
      merge_triangles(other, l);
      l = other;
    }
  }

  if (rank + pof2 < p) {
    pack_lower(l, sendbuf);
    comm.send(rank + pof2, sendbuf.data(), tlen, kUnfoldTag);
  }
}

/// Packs the upper triangle (including diagonal) of an m x m matrix.
template <class T>
void pack_upper(const blas::Matrix<T>& r, std::vector<T>& buf) {
  const index_t m = r.rows();
  buf.resize(static_cast<std::size_t>(m * (m + 1) / 2));
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i)
    for (index_t j = i; j < m; ++j) buf[k++] = r(i, j);
}

template <class T>
void unpack_upper(const std::vector<T>& buf, blas::Matrix<T>& r) {
  const index_t m = r.rows();
  std::size_t k = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < i; ++j) r(i, j) = T(0);
    for (index_t j = i; j < m; ++j) r(i, j) = buf[k++];
  }
}

/// Merges two upper-triangular factors: first <- R factor of QR([first;
/// second]), exploiting that both blocks are triangular -- the transpose
/// twin of merge_triangles for the tall-skinny (QR) orientation. `second`
/// is destroyed (overwritten with reflectors).
template <class T>
void merge_triangles_qr(blas::Matrix<T>& first, blas::Matrix<T>& second) {
  std::vector<T> tau;
  la::tpqrt(first.view(), second.view(), tau, la::Pentagon::kTriangular);
}

/// Butterfly (all-reduce style) TSQR reduction over upper-triangular
/// factors: on return every rank of `comm` holds the triangular factor of
/// the vertically stacked global matrix. Structure mirrors
/// butterfly_lq_reduce exactly (excess-rank fold to the power-of-two
/// subset, both partners merging in world-rank order for bitwise
/// identity); only the triangle orientation and the merge kernel differ.
template <class T>
void butterfly_qr_reduce(blas::Matrix<T>& r, mpi::Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const index_t m = r.rows();
  const int rank = comm.rank();
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;

  std::vector<T> sendbuf, recvbuf;
  const std::int64_t tlen = m * (m + 1) / 2;
  blas::Matrix<T> other(m, m);

  constexpr int kFoldTag = 903, kUnfoldTag = 904, kStepTag = 930;

  if (rank >= pof2) {
    pack_upper(r, sendbuf);
    comm.send(rank - pof2, sendbuf.data(), tlen, kFoldTag);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank - pof2, recvbuf.data(), tlen, kUnfoldTag);
    unpack_upper(recvbuf, r);
    return;
  }
  if (rank + pof2 < p) {
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.recv(rank + pof2, recvbuf.data(), tlen, kFoldTag);
    unpack_upper(recvbuf, other);
    merge_triangles_qr(r, other);  // lower world-rank's factor goes first
  }

  for (int mask = 1, step = 0; mask < pof2; mask <<= 1, ++step) {
    const int partner = rank ^ mask;
    pack_upper(r, sendbuf);
    recvbuf.resize(static_cast<std::size_t>(tlen));
    comm.sendrecv(partner, sendbuf.data(), tlen, recvbuf.data(), tlen,
                  kStepTag + step);
    unpack_upper(recvbuf, other);
    if (rank < partner) {
      merge_triangles_qr(r, other);
    } else {
      // Both partners compute QR([R_low; R_high]) so the reduction yields a
      // bitwise-identical factor everywhere.
      merge_triangles_qr(other, r);
      r = other;
    }
  }

  if (rank + pof2 < p) {
    pack_upper(r, sendbuf);
    comm.send(rank + pof2, sendbuf.data(), tlen, kUnfoldTag);
  }
}

/// R factor (w x w, replicated over `fiber`) of the tall-skinny matrix
/// whose row slabs the fiber ranks hold: local QR of the slab, zero-padded
/// triangle when the slab is shorter than w, then the butterfly reduction.
template <class T>
blas::Matrix<T> tsqr_r_factor(blas::MatView<const T> slab, mpi::Comm& fiber) {
  const index_t mloc = slab.rows();
  const index_t w = slab.cols();
  blas::Matrix<T> r(w, w);
  if (mloc > 0 && w > 0) {
    Workspace& ws = Workspace::local();
    auto scratch = ws.frame();
    auto a = blas::MatView<T>::row_major(
        ws.get<T>(static_cast<std::size_t>(mloc * w)), mloc, w);
    blas::copy(slab, a);
    std::vector<T> tau;
    la::geqrf(a, tau);
    const index_t k = std::min(mloc, w);
    for (index_t i = 0; i < k; ++i)
      for (index_t j = i; j < w; ++j) r(i, j) = a(i, j);
  }
  butterfly_qr_reduce(r, fiber);
  return r;
}

/// q_slab <- w_slab * R^{-1} by forward column substitution. Columns whose
/// diagonal entry is below the numerical-rank floor are zeroed (they carry
/// no energy; the projected spectrum then reports ~0 for them and rank
/// selection discards them).
template <class T>
void apply_rinv(blas::MatView<const T> w_slab, const blas::Matrix<T>& r,
                blas::MatView<T> q_slab) {
  const index_t mloc = w_slab.rows();
  const index_t w = w_slab.cols();
  T maxdiag = T(0);
  for (index_t j = 0; j < w; ++j)
    maxdiag = std::max(maxdiag, std::abs(r(j, j)));
  const T tol = maxdiag * std::numeric_limits<T>::epsilon() *
                static_cast<T>(std::max<index_t>(w, 1));
  for (index_t j = 0; j < w; ++j) {
    if (std::abs(r(j, j)) <= tol) {
      for (index_t i = 0; i < mloc; ++i) q_slab(i, j) = T(0);
      continue;
    }
    const T inv = T(1) / r(j, j);
    for (index_t i = 0; i < mloc; ++i) {
      T s = w_slab(i, j);
      for (index_t k = 0; k < j; ++k) s -= r(k, j) * q_slab(i, k);
      q_slab(i, j) = s * inv;
    }
  }
  tucker::add_flops(static_cast<std::int64_t>(mloc) * w * (w + 1));
}

/// Orthonormalizes the fiber-stacked tall-skinny matrix held as row slabs:
/// TSQR for the replicated R, substitution for the explicit Q slab, then
/// one refinement pass (a second TSQR of Q) to restore the orthogonality
/// lost to cond(W) -- the CholeskyQR2 device, here with the backward-stable
/// tpqrt butterfly instead of a Cholesky. w_slab is destroyed (used as
/// scratch for the refinement).
template <class T>
void tsqr_orthonormalize(blas::MatView<T> w_slab, mpi::Comm& fiber,
                         blas::MatView<T> q_slab) {
  blas::Matrix<T> r1 =
      tsqr_r_factor(blas::MatView<const T>(w_slab), fiber);
  apply_rinv(blas::MatView<const T>(w_slab), r1, q_slab);
  blas::Matrix<T> r2 =
      tsqr_r_factor(blas::MatView<const T>(q_slab), fiber);
  blas::copy(blas::MatView<const T>(q_slab), w_slab);
  apply_rinv(blas::MatView<const T>(w_slab), r2, q_slab);
}

/// Maps a *local* unfolding column index of a distributed block to the
/// corresponding *global* unfolding column: mixed-radix decode over the
/// modes other than n (mode 0 fastest, matching for_each_unfolding_panel's
/// column order), offset by the rank's owned range in each mode. This is
/// what lets every rank draw its rows of the one global test matrix Omega
/// locally, with zero communication.
class GlobalColMap {
 public:
  template <class T>
  GlobalColMap(const DistTensor<T>& y, std::size_t n) {
    std::uint64_t gs = 1;
    for (std::size_t k = 0; k < y.order(); ++k) {
      if (k == n) continue;
      ldim_.push_back(y.local().dim(k));
      lo_.push_back(static_cast<std::uint64_t>(y.mode_range(k).lo));
      gstride_.push_back(gs);
      gs *= static_cast<std::uint64_t>(y.global_dim(k));
    }
  }
  std::uint64_t operator()(index_t c) const {
    auto rem = static_cast<std::uint64_t>(c);
    std::uint64_t g = 0;
    for (std::size_t i = 0; i < ldim_.size(); ++i) {
      const auto d = static_cast<std::uint64_t>(ldim_[i]);
      g += (lo_[i] + rem % d) * gstride_[i];
      rem /= d;
    }
    return g;
  }

 private:
  std::vector<index_t> ldim_;
  std::vector<std::uint64_t> lo_, gstride_;
};

}  // namespace detail

/// Gram matrix of the global mode-n unfolding, replicated on every rank:
/// local syrk (after fiber redistribution when P_n > 1) plus a world
/// allreduce. This is TuckerMPI's kernel; its cost is n*m^2 local flops.
///
/// `pieces` > 1 splits the m*m allreduce into that many row-chunks posted
/// as nonblocking iallreduces and waited together: each element still
/// travels the identical binomial tree in the identical summation order
/// (bitwise-identical result), but the chunks' trees pipeline through the
/// injection pipe instead of serializing round by round, shortening the
/// modeled critical path at large P.
template <class T>
blas::Matrix<T> par_gram(const DistTensor<T>& y, std::size_t n,
                         index_t pieces = 1, Accum accum = Accum::kNative) {
  const index_t m = y.global_dim(n);
  blas::Matrix<T> g(m, m);
  if (y.grid().dim(n) == 1) {
    if (y.local().size() > 0)
      g = tensor::gram_of_unfolding(y.local(), n, accum);
  } else {
    ColMatrix<T> z = redistribute_unfolding(y, n);
    if (z.cols > 0) {
      if (accum == Accum::kWide) {
        blas::syrk<T, wide_t<T>>(
            T(1), static_cast<blas::MatView<const T>>(z.view()), T(0),
            g.view());
      } else {
        blas::syrk(T(1), static_cast<blas::MatView<const T>>(z.view()), T(0),
                   g.view());
      }
    }
  }
  pieces = std::max<index_t>(1, std::min(pieces, std::max<index_t>(m, 1)));
  if (pieces <= 1) {
    y.world().allreduce(g.data(), m * m, mpi::Op::kSum);
  } else {
    std::vector<mpi::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(pieces));
    for (index_t i = 0; i < pieces; ++i) {
      const index_t r0 = i * m / pieces;
      const index_t r1 = (i + 1) * m / pieces;
      if (r1 > r0)
        reqs.push_back(y.world().iallreduce(g.data() + r0 * m, (r1 - r0) * m,
                                            mpi::Op::kSum));
    }
    mpi::Comm::waitall(reqs);
  }
  y.world().sync_cpu_clock();  // attribute trailing compute to this region
  return g;
}

/// Triangular LQ factor of the global mode-n unfolding, replicated on every
/// rank (paper Alg 3): local LQ tailored to the data layout, then a
/// butterfly TSQR reduction over all ranks. The result is the m x m lower
/// triangle; ranks whose local slice was tall contribute zero-padded
/// triangles (paper Sec 3.4). Costs ~2*n*m^2 local flops -- twice Gram.
template <class T>
blas::Matrix<T> par_tensor_lq(const DistTensor<T>& y, std::size_t n) {
  const index_t m = y.global_dim(n);
  blas::Matrix<T> l(m, m);
  if (y.grid().dim(n) == 1) {
    if (y.local().size() > 0) {
      blas::Matrix<T> lt = tensor::tensor_lq(y.local(), n);
      blas::copy(blas::MatView<const T>(lt.view()),
                 l.view().block(0, 0, lt.rows(), lt.cols()));
    }
  } else {
    ColMatrix<T> z = redistribute_unfolding(y, n);
    if (z.cols > 0) {
      std::vector<T> tau;
      la::gelqf(z.view(), tau);
      blas::Matrix<T> lt = la::extract_l<T>(blas::MatView<const T>(z.view()));
      blas::copy(blas::MatView<const T>(lt.view()),
                 l.view().block(0, 0, lt.rows(), lt.cols()));
    }
  }
  detail::butterfly_lq_reduce(l, y.world());
  y.world().sync_cpu_clock();  // attribute trailing compute to this region
  return l;
}

/// Distributed TTM truncation into a caller-owned tensor: Y = X x_n U^T
/// where U (I_n x R) is replicated. Local partial products with the owned
/// row slice of U, a fiber reduction, and extraction of the owned slice of
/// the R rows keep the block distribution (same grid, mode-n dimension now
/// R). `out` must share x's grid (an empty_clone or a previous output) and
/// is re-dimensioned in place, so cycling the same out through repeated
/// truncations reuses its local allocation.
///
/// `overlap` selects the direct-exchange reduce-scatter (bitwise-identical
/// fold order, pipelined sends -- see Comm::reduce_scatter) for the fiber
/// reduction.
template <class T>
void par_ttm_truncate_into(const DistTensor<T>& x, std::size_t n,
                           blas::MatView<const T> u, DistTensor<T>& out,
                           bool overlap = false,
                           Accum accum = Accum::kNative) {
  TUCKER_CHECK(u.rows() == x.global_dim(n), "par_ttm: U row mismatch");
  TUCKER_CHECK(&x != &out, "par_ttm: x and out must be distinct");
  const index_t r = u.cols();
  out.reshape_mode_of(x, n, r);

  // Partial product with my row slice of U: tmp = X_loc x_n (U_rows)^T,
  // giving all R rows of my column set. The partial tensor and the pack
  // buffers below are stashed per rank-thread so every truncation of the
  // parallel ST-HOSVD sweep reuses them.
  Workspace& ws = Workspace::local();
  const Range rows = x.mode_range(n);
  auto usub = u.block(rows.lo, 0, rows.size(), r);
  auto& tmp = ws.stash<tensor::Tensor<T>>("dist.par_ttm.partial");
  tensor::ttm_into(x.local(), n, blas::MatView<const T>(usub.t()), tmp,
                   accum);

  const index_t pn = x.grid().dim(n);
  if (pn > 1 && tmp.size() > 0) {
    // Reduce-scatter across the fiber: sum the partials and leave each rank
    // exactly its block of the R rows (TuckerMPI's approach). Pack the
    // partial so each destination's rows are contiguous; the received block
    // is already in the output tensor's natural layout.
    mpi::Comm& fiber = x.fiber_comm(n);
    const index_t before = tensor::prod_before(tmp.dims(), n);
    const index_t nblocks = tensor::unfolding_num_blocks(tmp, n);
    auto& sendbuf = ws.stash<std::vector<T>>("dist.par_ttm.sendbuf");
    sendbuf.resize(static_cast<std::size_t>(tmp.size()));
    auto& counts = ws.stash<std::vector<std::int64_t>>("dist.par_ttm.counts");
    counts.resize(static_cast<std::size_t>(pn));
    {
      std::int64_t off = 0;
      for (index_t q = 0; q < pn; ++q) {
        const Range qr = block_range(r, pn, q);
        counts[static_cast<std::size_t>(q)] = qr.size() * before * nblocks;
        for (index_t j = 0; j < nblocks; ++j) {
          auto blk = tensor::unfolding_block(tmp, n, j);
          for (index_t i = qr.lo; i < qr.hi; ++i)
            for (index_t c = 0; c < before; ++c)
              sendbuf[static_cast<std::size_t>(off++)] = blk(i, c);
        }
      }
    }
    fiber.reduce_scatter(sendbuf.data(), out.local().data(), counts, overlap);
    return;
  }

  // P_n == 1 (or empty): keep my block slice of the R rows directly.
  const Range orows = out.mode_range(n);
  const index_t nblocks = tensor::unfolding_num_blocks(out.local(), n);
  for (index_t j = 0; j < nblocks; ++j) {
    auto src = tensor::unfolding_block(tmp, n, j);
    auto dst = tensor::unfolding_block(out.local(), n, j);
    if (dst.rows() > 0 && dst.cols() > 0)
      blas::copy(blas::MatView<const T>(
                     src.block(orows.lo, 0, orows.size(), src.cols())),
                 dst);
  }
}

/// Value-returning convenience wrapper around par_ttm_truncate_into.
template <class T>
DistTensor<T> par_ttm_truncate(const DistTensor<T>& x, std::size_t n,
                               blas::MatView<const T> u) {
  DistTensor<T> out = x.empty_clone();
  par_ttm_truncate_into(x, n, u, out);
  return out;
}

/// Result of the distributed randomized mode SVD: the sketched spectrum
/// (w squared singular values plus the trailing residual pseudo-entry, see
/// core::rand_svd) and the m x w left-basis matrix, replicated.
template <class T>
struct ParSvdBasis {
  std::vector<T> sigma_sq;
  blas::Matrix<T> u;
};

// The distributed randomized range-finder SVD is split into a dispatch
// half (sketch + slice reduction) and a finalize half (everything after),
// so the mode-parallel driver can keep several modes' sketches in flight;
// par_rand_svd composes the two for the classic blocking call.
//
/// Communication pattern per round:
///  - Sketch: each rank multiplies its owned slab of the unfolding by its
///    rows of the global Omega (drawn locally via detail::GlobalColMap), and
///    a "slice" allreduce (over ranks sharing this rank's mode-n range) sums
///    the column partials. The m x w sketch stays distributed as row slabs
///    over the mode-n fiber.
///  - Orthonormalize: butterfly TSQR over the fiber (tpqrt on stacked
///    triangles, detail::tsqr_orthonormalize) -- the tall-skinny sketch is
///    exactly the shape the paper's TSQR machinery was built for.
///  - Power iteration: Z = X^T Q needs a fiber allreduce (row blocks of X
///    couple across the fiber); W = X Z needs the slice allreduce again.
///  - Projected spectrum: B = Q^T X via fiber allreduce, local syrk over
///    the owned columns, slice allreduce for the w x w Gram, redundant
///    eigensolve -- every rank selects identical widths and ranks.
///
/// Determinism contract: Omega is invariant across grids and thread counts;
/// for a fixed grid the result is bitwise identical run to run and across
/// TUCKER_NUM_THREADS (every collective is bitwise-replicated and every
/// local kernel thread-invariant). Across *different* grids the allreduce
/// summation order differs, so results match the sequential engine only to
/// rounding -- the same contract as par_gram / par_tensor_lq.

/// In-flight state of one mode's dispatched sketch: everything
/// finalize_mode_sketch needs to resume where dispatch_mode_sketch left
/// off. One of these is alive per window slot in the mode-parallel driver,
/// so the first-round sketch slab is a plain vector (the Workspace arena's
/// stack discipline cannot hold several interleaved lifetimes).
template <class T>
struct ModeSketchState {
  std::size_t mode = 0;
  std::string label;
  // Engine/truncation parameters captured at dispatch.
  index_t fixed_rank = 0;
  double threshold_sq = 0;
  index_t oversample = 0;
  int power_iters = 0;
  // Geometry of the dispatch-time source tensor.
  index_t m = 0, mloc = 0, cols_glob = 0, cols_loc = 0, cap = 0, rows_lo = 0;
  bool empty = false;
  index_t w = 0;  // first-round sketch width
  double norm_sq = 0;
  std::uint64_t stream = 0;
  std::optional<detail::GlobalColMap> colmap;
  std::optional<mpi::Comm> slice;
  std::vector<T> snew;  // mloc x w first-round sketch slab (reduced)
  mpi::Request req;     // pending slice iallreduce (nonblocking dispatch)
  Accum accum = Accum::kNative;  // accumulator width captured at dispatch
};

/// Dispatch half of par_rand_svd: creates the slice communicator, draws
/// the first-round sketch columns of the mode-n unfolding and starts their
/// slice reduction -- as an iallreduce when `nonblocking` (the buffer is
/// already reduced on return; its modeled time is credited when
/// finalize_mode_sketch waits the request), or as the classic blocking
/// allreduce otherwise. Collective over y.world() either way, so the
/// mode-parallel driver must dispatch window modes in the same order on
/// every rank.
///
/// `known_norm_sq` short-circuits the ||Y||^2 allreduce when the caller
/// already holds it: a window of dispatches shares one frozen source, so
/// the driver computes the norm once and passes it to every member --
/// otherwise the per-dispatch blocking allreduce would serialize the very
/// reductions the window is trying to overlap. The value is identical
/// either way (same tensor), so results are unchanged bitwise.
template <class T>
void dispatch_mode_sketch(const DistTensor<T>& y, std::size_t n,
                          index_t fixed_rank, double threshold_sq,
                          index_t oversample, int power_iters,
                          std::uint64_t seed, index_t rank_guess,
                          const std::string& label, bool nonblocking,
                          ModeSketchState<T>& st,
                          const double* known_norm_sq = nullptr,
                          Accum accum = Accum::kNative) {
  mpi::Comm& world = y.world();
  st.mode = n;
  st.label = label;
  st.fixed_rank = fixed_rank;
  st.threshold_sq = threshold_sq;
  st.oversample = oversample;
  st.power_iters = power_iters;
  st.accum = accum;
  // Ranks sharing my mode-n coordinate hold the same rows of the unfolding
  // but different column sets: their partials sum over this communicator.
  st.slice.emplace(
      world.split(static_cast<int>(y.coords()[n]), world.rank()));

  st.m = y.global_dim(n);
  st.cols_glob = 1;
  for (std::size_t k = 0; k < y.order(); ++k)
    if (k != n) st.cols_glob *= y.global_dim(k);
  if (st.m == 0 || st.cols_glob == 0) {
    st.empty = true;
    return;
  }
  const Range rows = y.mode_range(n);
  st.rows_lo = rows.lo;
  st.mloc = rows.size();
  st.cols_loc = tensor::prod_before(y.local().dims(), n) *
                tensor::prod_after(y.local().dims(), n);
  st.cap = std::min(st.m, st.cols_glob);
  const index_t p = std::max<index_t>(oversample, 0);
  index_t w;
  if (fixed_rank > 0) {
    w = std::min(st.cap, fixed_rank + p);
  } else {
    const index_t guess =
        rank_guess > 0 ? rank_guess : std::max<index_t>(8, st.m / 8);
    w = std::min(st.cap, guess + p);
  }
  st.w = std::max<index_t>(w, 1);

  st.norm_sq = known_norm_sq ? *known_norm_sq : y.norm_squared();
  st.stream = substream(seed, n);
  st.colmap.emplace(y, n);

  auto rg = world.region(label + "/Sketch");
  st.snew.assign(
      static_cast<std::size_t>(std::max<index_t>(st.mloc, 1) * st.w), T(0));
  auto snew = blas::MatView<T>::row_major(st.snew.data(), st.mloc, st.w);
  tensor::sketch_unfolding_cols(y.local(), n, st.stream, 0, st.w, *st.colmap,
                                snew, accum);
  if (nonblocking)
    st.req =
        st.slice->iallreduce(st.snew.data(), st.mloc * st.w, mpi::Op::kSum);
  else
    st.slice->allreduce(st.snew.data(), st.mloc * st.w, mpi::Op::kSum);
  world.sync_cpu_clock();
}

/// Finalize half of par_rand_svd: waits the dispatched sketch reduction,
/// then runs the power iterations, TSQR orthonormalization, projected
/// spectrum and (in tolerance mode) the adaptive width-doubling rounds --
/// all against the SAME tensor the sketch was dispatched from. The
/// collective sequence is identical to the historic single-call
/// par_rand_svd, so dispatch+finalize back to back is bitwise-identical
/// to it (and to itself across thread widths and reruns).
template <class T>
ParSvdBasis<T> finalize_mode_sketch(const DistTensor<T>& y,
                                    ModeSketchState<T>& st) {
  mpi::Comm& world = y.world();
  ParSvdBasis<T> out;
  if (st.empty) {
    out.u = blas::Matrix<T>(st.m, 0);
    return out;
  }
  mpi::Comm& fiber = y.fiber_comm(st.mode);
  mpi::Comm& slice = *st.slice;
  const std::size_t n = st.mode;
  const std::string& label = st.label;
  const index_t m = st.m;
  const index_t mloc = st.mloc;
  const index_t cols_loc = st.cols_loc;
  const index_t cap = st.cap;
  const index_t p = std::max<index_t>(st.oversample, 0);
  const bool fixed = st.fixed_rank > 0;
  const double norm_sq = st.norm_sq;
  const double threshold_sq = st.threshold_sq;
  index_t w = st.w;
  // Wide-accumulator dispatch for the local level-3 kernels; the collective
  // reductions stay at storage width (the wire format is T either way).
  const Accum accum = st.accum;
  auto wgemm = [&](T alpha, blas::MatView<const T> a, blas::MatView<const T> b,
                   T beta, blas::MatView<T> c) {
    if (accum == Accum::kWide) {
      blas::gemm<T, wide_t<T>>(alpha, a, b, beta, c);
    } else {
      blas::gemm(alpha, a, b, beta, c);
    }
  };
  auto wsyrk = [&](T alpha, blas::MatView<const T> a, T beta,
                   blas::MatView<T> c) {
    if (accum == Accum::kWide) {
      blas::syrk<T, wide_t<T>>(alpha, a, beta, c);
    } else {
      blas::syrk(alpha, a, beta, c);
    }
  };

  Workspace& ws = Workspace::local();
  auto arena = ws.frame();
  // Slab of the global sketch (my rows, all columns drawn so far); the
  // adaptive loop only ever appends columns.
  auto sall = blas::MatView<T>::row_major(
      ws.get<T>(static_cast<std::size_t>(std::max<index_t>(mloc, 1) * cap)),
      mloc, cap);
  T* wdata =
      ws.get<T>(static_cast<std::size_t>(std::max<index_t>(mloc, 1) * cap));
  T* qdata =
      ws.get<T>(static_cast<std::size_t>(std::max<index_t>(mloc, 1) * cap));

  index_t wprev = 0;
  bool first_round = true;
  for (;;) {
    std::vector<T> sigma_sq;
    blas::Matrix<T> v;
    auto qv = blas::MatView<T>::row_major(qdata, mloc, w);
    {
      auto rg = world.region(label + "/Sketch");
      const index_t wnew = w - wprev;
      if (first_round) {
        // Land the dispatched first-round sketch: wait its in-flight
        // reduction (a no-op after a blocking dispatch) and append.
        st.req.wait();
        if (mloc > 0)
          blas::copy(
              blas::MatView<const T>::row_major(st.snew.data(), mloc, w),
              sall.block(0, 0, mloc, w));
        first_round = false;
      } else {
        // New Omega columns: local partial sketch (contiguous so the
        // collective can sum it), slice allreduce, append to the slab.
        auto scratch = ws.frame();
        auto snew = blas::MatView<T>::row_major(
            ws.get<T>(static_cast<std::size_t>(std::max<index_t>(mloc, 1) *
                                               wnew)),
            mloc, wnew);
        tensor::sketch_unfolding_cols(y.local(), n, st.stream, wprev, w,
                                      *st.colmap, snew, accum);
        slice.allreduce(snew.data(), mloc * wnew, mpi::Op::kSum);
        if (mloc > 0)
          blas::copy(blas::MatView<const T>(snew),
                     sall.block(0, wprev, mloc, wnew));
      }
      auto wv = blas::MatView<T>::row_major(wdata, mloc, w);
      if (mloc > 0)
        blas::copy(blas::MatView<const T>(sall.block(0, 0, mloc, w)), wv);
      for (int it = 0; it < st.power_iters; ++it) {
        detail::tsqr_orthonormalize(wv, fiber, qv);
        auto scratch = ws.frame();
        auto z = blas::MatView<T>::row_major(
            ws.get<T>(static_cast<std::size_t>(
                std::max<index_t>(cols_loc, 1) * w)),
            cols_loc, w);
        tensor::for_each_unfolding_panel(
            y.local(), n, [&](blas::MatView<const T> panel, index_t c0) {
              auto zp = z.block(c0, 0, panel.cols(), w);
              wgemm(T(1), blas::MatView<const T>(panel.t()),
                    blas::MatView<const T>(qv), T(0), zp);
            });
        fiber.allreduce(z.data(), cols_loc * w, mpi::Op::kSum);
        blas::fill(wv, T(0));
        tensor::for_each_unfolding_panel(
            y.local(), n, [&](blas::MatView<const T> panel, index_t c0) {
              auto zp = z.block(c0, 0, panel.cols(), w);
              wgemm(T(1), panel, blas::MatView<const T>(zp), T(1), wv);
            });
        slice.allreduce(wdata, mloc * w, mpi::Op::kSum);
      }
      detail::tsqr_orthonormalize(wv, fiber, qv);
      world.sync_cpu_clock();
    }

    double captured = 0;
    {
      auto rg = world.region(label + "/SVD");
      auto scratch = ws.frame();
      auto b = blas::MatView<T>::row_major(
          ws.get<T>(static_cast<std::size_t>(
              w * std::max<index_t>(cols_loc, 1))),
          w, cols_loc);
      blas::fill(b, T(0));
      tensor::for_each_unfolding_panel(
          y.local(), n, [&](blas::MatView<const T> panel, index_t c0) {
            auto bp = b.block(0, c0, w, panel.cols());
            wgemm(T(1), blas::MatView<const T>(qv.t()), panel, T(0), bp);
          });
      fiber.allreduce(b.data(), w * cols_loc, mpi::Op::kSum);
      auto g = blas::MatView<T>::row_major(
          ws.get<T>(static_cast<std::size_t>(w * w)), w, w);
      wsyrk(T(1), blas::MatView<const T>(b), T(0), g);
      slice.allreduce(g.data(), w * w, mpi::Op::kSum);
      auto eig = la::tridiag_eig(blas::MatView<const T>(g));
      world.sync_cpu_clock();
      sigma_sq.reserve(static_cast<std::size_t>(w) + 1);
      for (T lam : eig.lambda) {
        const T s = std::abs(lam);
        sigma_sq.push_back(s);
        captured += static_cast<double>(s);
      }
      v = std::move(eig.v);
    }
    // At full width the residual is exactly zero (the basis spans the
    // whole row space); see core::rand_svd.
    const double resid =
        w >= cap ? 0.0 : std::max(0.0, norm_sq - captured);
    sigma_sq.push_back(static_cast<T>(resid));

    bool accept = fixed || w >= cap;
    if (!fixed && !accept) {
      // Same certification as core::rand_svd; all inputs are replicated,
      // so every rank takes the same branch.
      const bool certified =
          static_cast<double>(sigma_sq.back()) <= threshold_sq;
      const index_t r = core::select_rank(sigma_sq, threshold_sq);
      accept = certified && r + p <= w;
    }
    if (accept) {
      auto rg = world.region(label + "/SVD");
      out.sigma_sq = std::move(sigma_sq);
      out.u = blas::Matrix<T>(m, w);
      // U = Q V assembled by global row offset: each slice holds identical
      // Q slabs, so only slice rank 0 contributes its block and a world
      // allreduce replicates the stacked result.
      if (mloc > 0 && slice.rank() == 0) {
        wgemm(T(1), blas::MatView<const T>(qv),
              blas::MatView<const T>(v.view()), T(0),
              out.u.view().block(st.rows_lo, 0, mloc, w));
      }
      world.allreduce(out.u.data(), m * w, mpi::Op::kSum);
      world.sync_cpu_clock();
      return out;
    }
    wprev = w;
    w = std::min(cap, 2 * w);
  }
}

/// Distributed randomized range-finder SVD of the global mode-n unfolding
/// (the parallel twin of core::rand_svd; same sketch algebra, same
/// adaptive-oversampling loop, same trailing-residual convention): a
/// blocking dispatch_mode_sketch immediately finalized. See those two for
/// the communication pattern; the determinism contract is unchanged --
/// Omega is grid/thread-invariant, every collective bitwise-replicated,
/// results bitwise-identical run to run and across TUCKER_NUM_THREADS for
/// a fixed grid. Compute regions are tagged label+"/Sketch" and
/// label+"/SVD".
template <class T>
ParSvdBasis<T> par_rand_svd(const DistTensor<T>& y, std::size_t n,
                            index_t fixed_rank, double threshold_sq,
                            index_t oversample, int power_iters,
                            std::uint64_t seed, index_t rank_guess,
                            const std::string& label,
                            Accum accum = Accum::kNative) {
  ModeSketchState<T> st;
  dispatch_mode_sketch(y, n, fixed_rank, threshold_sq, oversample,
                       power_iters, seed, rank_guess, label,
                       /*nonblocking=*/false, st, nullptr, accum);
  return finalize_mode_sketch(y, st);
}

}  // namespace tucker::dist
