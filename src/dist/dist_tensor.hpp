#pragma once
// Block-distributed dense tensor over a simulated-MPI processor grid.
//
// Each rank owns the contiguous subtensor given by the block distribution
// in every mode (paper Sec 3.4); the local block uses the same mode-0-
// fastest layout as the sequential Tensor, so local unfolding kernels apply
// unchanged. Per-mode fiber communicators (ranks differing only in that
// mode's grid coordinate) are split once and shared across tensors derived
// by TTM truncation.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dist/processor_grid.hpp"
#include "simmpi/comm.hpp"
#include "tensor/tensor.hpp"

namespace tucker::dist {

template <class T>
class DistTensor {
 public:
  /// Collective: all ranks of `world` must construct with the same grid and
  /// global dims. Splits one fiber communicator per mode.
  DistTensor(mpi::Comm& world, ProcessorGrid grid, Dims global_dims)
      : world_(&world),
        grid_(std::move(grid)),
        global_dims_(std::move(global_dims)),
        coords_(grid_.coords(world.rank())) {
    TUCKER_CHECK(grid_.order() == global_dims_.size(),
                 "DistTensor: grid/tensor order mismatch");
    TUCKER_CHECK(grid_.total() == world.size(),
                 "DistTensor: grid size must equal comm size");
    Dims local(global_dims_.size());
    for (std::size_t n = 0; n < global_dims_.size(); ++n)
      local[n] = mode_range(n).size();
    local_ = tensor::Tensor<T>(local);

    auto comms = std::make_shared<std::vector<mpi::Comm>>();
    comms->reserve(grid_.order());
    for (std::size_t n = 0; n < grid_.order(); ++n)
      comms->push_back(world.split(grid_.fiber_color(coords_, n),
                                   static_cast<int>(coords_[n])));
    fiber_comms_ = std::move(comms);
  }

  DistTensor(DistTensor&&) noexcept = default;
  DistTensor& operator=(DistTensor&&) noexcept = default;
  // Copying would duplicate communicator sequence state; use clone().
  DistTensor(const DistTensor&) = delete;
  DistTensor& operator=(const DistTensor&) = delete;

  /// Deep copy of the local data sharing grid and fiber communicators.
  DistTensor clone() const { return DistTensor(*this, local_); }

  /// A tensor with the same distribution but mode n resized to new_dim
  /// (used by TTM truncation); local data default-initialized.
  DistTensor with_mode_dim(std::size_t n, index_t new_dim) const {
    Dims g = global_dims_;
    g[n] = new_dim;
    DistTensor out(*this, tensor::Tensor<T>{}, std::move(g));
    Dims local(out.order());
    for (std::size_t k = 0; k < out.order(); ++k)
      local[k] = out.mode_range(k).size();
    out.local_ = tensor::Tensor<T>(local);
    return out;
  }

  /// Shares this tensor's grid and communicators but owns no data yet.
  /// Pair with reshape_mode_of() to cycle TTM-truncation outputs through
  /// the same allocation (the parallel ST-HOSVD ping-pong).
  DistTensor empty_clone() const {
    return DistTensor(*this, tensor::Tensor<T>{});
  }

  /// Re-dimensions in place to src's global dims with mode n replaced by
  /// new_dim, reusing the local allocation when it has capacity (grow-only,
  /// see Tensor::reshape). Local contents are unspecified afterwards. Must
  /// share src's processor grid (e.g. created by empty_clone()).
  void reshape_mode_of(const DistTensor& src, std::size_t n,
                       index_t new_dim) {
    TUCKER_CHECK(global_dims_.size() == src.global_dims_.size() ||
                     global_dims_.empty(),
                 "reshape_mode_of: order mismatch");
    global_dims_ = src.global_dims_;
    global_dims_[n] = new_dim;
    Dims local(order());
    for (std::size_t k = 0; k < order(); ++k) local[k] = mode_range(k).size();
    local_.reshape(local);
  }

  mpi::Comm& world() const { return *world_; }
  const ProcessorGrid& grid() const { return grid_; }
  const Dims& global_dims() const { return global_dims_; }
  index_t global_dim(std::size_t n) const { return global_dims_[n]; }
  std::size_t order() const { return global_dims_.size(); }
  const std::vector<index_t>& coords() const { return coords_; }
  tensor::Tensor<T>& local() { return local_; }
  const tensor::Tensor<T>& local() const { return local_; }
  mpi::Comm& fiber_comm(std::size_t n) const { return (*fiber_comms_)[n]; }

  /// Global index range this rank owns in mode n.
  Range mode_range(std::size_t n) const {
    return block_range(global_dims_[n], grid_.dim(n), coords_[n]);
  }

  /// Fills the local block from a function of the *global* multi-index.
  void fill(const std::function<T(const std::vector<index_t>&)>& fn) {
    std::vector<index_t> global(order());
    for (index_t lin = 0; lin < local_.size(); ++lin) {
      auto idx = local_.multi_index(lin);
      for (std::size_t n = 0; n < order(); ++n)
        global[n] = mode_range(n).lo + idx[n];
      local_.data()[lin] = fn(global);
    }
  }

  /// Scatters a full tensor held on every rank (tests / small inputs):
  /// each rank simply copies out its own block.
  void fill_from(const tensor::Tensor<T>& full) {
    TUCKER_CHECK(full.dims() == global_dims_, "fill_from: dims mismatch");
    fill([&](const std::vector<index_t>& g) { return full(g); });
  }

  /// Collective: distributes a full tensor held only on rank 0 (other
  /// ranks may pass an empty tensor); each rank receives its block. The
  /// inverse of gather_to_root().
  void scatter_from_root(const tensor::Tensor<T>& full) {
    const int p = world_->size();
    constexpr int kTag = 971;
    if (world_->rank() == 0) {
      TUCKER_CHECK(full.dims() == global_dims_,
                   "scatter_from_root: dims mismatch");
      std::vector<T> pack;
      for (int r = p - 1; r >= 0; --r) {
        const auto rc = grid_.coords(r);
        Dims rlocal(order());
        std::vector<index_t> rlo(order());
        for (std::size_t k = 0; k < order(); ++k) {
          Range range = block_range(global_dims_[k], grid_.dim(k), rc[k]);
          rlocal[k] = range.size();
          rlo[k] = range.lo;
        }
        tensor::Tensor<T> shape(rlocal);
        pack.resize(static_cast<std::size_t>(shape.size()));
        std::vector<index_t> g(order());
        for (index_t lin = 0; lin < shape.size(); ++lin) {
          auto idx = shape.multi_index(lin);
          for (std::size_t k = 0; k < order(); ++k) g[k] = rlo[k] + idx[k];
          pack[static_cast<std::size_t>(lin)] = full(g);
        }
        if (r == 0) {
          std::copy(pack.begin(), pack.end(), local_.data());
        } else {
          world_->send(r, pack.data(), shape.size(), kTag);
        }
      }
    } else {
      world_->recv(0, local_.data(), local_.size(), kTag);
    }
  }

  /// Global squared Frobenius norm (allreduce over the world comm).
  double norm_squared() const {
    double s = local_.norm_squared();
    world_->allreduce(&s, 1, mpi::Op::kSum);
    return s;
  }

  /// Collects the distributed tensor on rank 0 (others get an empty
  /// tensor). For tests and small outputs only.
  tensor::Tensor<T> gather_to_root() const {
    const int p = world_->size();
    std::vector<std::int64_t> counts(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      counts[static_cast<std::size_t>(r)] = local_count_of(r);
    std::int64_t total = 0;
    for (auto c : counts) total += c;

    std::vector<T> flat(world_->rank() == 0 ? static_cast<std::size_t>(total)
                                            : 0);
    world_->gatherv(local_.data(), local_.size(), flat.data(), counts, 0);
    if (world_->rank() != 0) return tensor::Tensor<T>{};

    tensor::Tensor<T> full(global_dims_);
    std::int64_t offset = 0;
    for (int r = 0; r < p; ++r) {
      const auto rc = grid_.coords(r);
      Dims rlocal(order());
      std::vector<index_t> rlo(order());
      for (std::size_t n = 0; n < order(); ++n) {
        Range range = block_range(global_dims_[n], grid_.dim(n), rc[n]);
        rlocal[n] = range.size();
        rlo[n] = range.lo;
      }
      tensor::Tensor<T> shape(rlocal);  // for multi_index arithmetic
      std::vector<index_t> g(order());
      for (index_t lin = 0; lin < shape.size(); ++lin) {
        auto idx = shape.multi_index(lin);
        for (std::size_t n = 0; n < order(); ++n) g[n] = rlo[n] + idx[n];
        full(g) = flat[static_cast<std::size_t>(offset + lin)];
      }
      offset += shape.size();
    }
    return full;
  }

 private:
  DistTensor(const DistTensor& proto, tensor::Tensor<T> local)
      : world_(proto.world_),
        grid_(proto.grid_),
        global_dims_(proto.global_dims_),
        coords_(proto.coords_),
        local_(std::move(local)),
        fiber_comms_(proto.fiber_comms_) {}

  DistTensor(const DistTensor& proto, tensor::Tensor<T> local, Dims gdims)
      : world_(proto.world_),
        grid_(proto.grid_),
        global_dims_(std::move(gdims)),
        coords_(proto.coords_),
        local_(std::move(local)),
        fiber_comms_(proto.fiber_comms_) {}

  std::int64_t local_count_of(int rank) const {
    const auto rc = grid_.coords(rank);
    std::int64_t n = 1;
    for (std::size_t k = 0; k < order(); ++k)
      n *= block_range(global_dims_[k], grid_.dim(k), rc[k]).size();
    return n;
  }

  mpi::Comm* world_;
  ProcessorGrid grid_;
  Dims global_dims_;
  std::vector<index_t> coords_;
  tensor::Tensor<T> local_;
  std::shared_ptr<std::vector<mpi::Comm>> fiber_comms_;
};

}  // namespace tucker::dist
