#pragma once
// N-dimensional processor grid and block distribution (paper Sec 3.4,
// following TuckerMPI).
//
// Processors are arranged in a grid with as many modes as the tensor;
// linearization matches the tensor layout (mode 0 fastest). The tensor is
// distributed in block fashion: in mode n the first (I_n mod P_n) grid
// coordinates own ceil(I_n/P_n) indices and the rest own floor(I_n/P_n) --
// the paper's uneven-division rule.

#include <vector>

#include "blas/matview.hpp"
#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace tucker::dist {

using blas::index_t;
using tensor::Dims;

/// Contiguous index range [lo, hi).
struct Range {
  index_t lo = 0;
  index_t hi = 0;
  index_t size() const { return hi - lo; }
};

/// Block-distribution range for coordinate p of P over dimension len:
/// first (len mod P) coordinates get the ceiling share.
inline Range block_range(index_t len, index_t nparts, index_t p) {
  TUCKER_CHECK(nparts >= 1 && p >= 0 && p < nparts, "block_range: bad part");
  const index_t base = len / nparts;
  const index_t extra = len % nparts;
  Range r;
  if (p < extra) {
    r.lo = p * (base + 1);
    r.hi = r.lo + base + 1;
  } else {
    r.lo = extra * (base + 1) + (p - extra) * base;
    r.hi = r.lo + base;
  }
  return r;
}

class ProcessorGrid {
 public:
  ProcessorGrid() = default;
  explicit ProcessorGrid(Dims pdims) : pdims_(std::move(pdims)) {
    for (index_t p : pdims_)
      TUCKER_CHECK(p >= 1, "ProcessorGrid: dims must be >= 1");
  }

  std::size_t order() const { return pdims_.size(); }
  const Dims& dims() const { return pdims_; }
  index_t dim(std::size_t n) const { return pdims_[n]; }
  int total() const { return static_cast<int>(tensor::num_elements(pdims_)); }

  /// Grid coordinates of a linear rank (mode 0 fastest).
  std::vector<index_t> coords(int rank) const {
    TUCKER_CHECK(rank >= 0 && rank < total(), "ProcessorGrid: rank range");
    std::vector<index_t> c(pdims_.size());
    index_t r = rank;
    for (std::size_t k = 0; k < pdims_.size(); ++k) {
      c[k] = r % pdims_[k];
      r /= pdims_[k];
    }
    return c;
  }

  int rank_of(const std::vector<index_t>& c) const {
    TUCKER_CHECK(c.size() == pdims_.size(), "ProcessorGrid: coord arity");
    index_t r = 0;
    for (std::size_t k = pdims_.size(); k-- > 0;) {
      TUCKER_DCHECK(c[k] >= 0 && c[k] < pdims_[k],
                    "ProcessorGrid: coord range");
      r = r * pdims_[k] + c[k];
    }
    return static_cast<int>(r);
  }

  /// Identifier of the mode-n fiber containing `c` (same for all ranks
  /// differing only in coordinate n); usable as a split color.
  int fiber_color(const std::vector<index_t>& c, std::size_t n) const {
    index_t color = 0;
    for (std::size_t k = pdims_.size(); k-- > 0;) {
      if (k == n) continue;
      color = color * pdims_[k] + c[k];
    }
    return static_cast<int>(color);
  }

 private:
  Dims pdims_;
};

}  // namespace tucker::dist
