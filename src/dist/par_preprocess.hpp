#pragma once
// Distributed per-slice statistics and normalization.
//
// The parallel counterpart of tensor/preprocess.hpp (TuckerMPI computes its
// dataset statistics and normalization in parallel before compressing):
// each rank accumulates moments over its local block per *global* slice
// index, a world allreduce combines them, and the normalization is applied
// locally -- no data movement beyond the O(I_n) statistics vectors.

#include <limits>
#include <vector>

#include "dist/dist_tensor.hpp"
#include "tensor/preprocess.hpp"

namespace tucker::dist {

/// Statistics for every global slice of mode n (identical on all ranks).
template <class T>
std::vector<tensor::SliceStats> par_slice_statistics(const DistTensor<T>& x,
                                                     std::size_t n) {
  TUCKER_CHECK(n < x.order(), "par_slice_statistics: mode out of range");
  const index_t slices = x.global_dim(n);
  // Packed accumulators: [min | max | sum | sumsq] per slice.
  std::vector<double> acc(static_cast<std::size_t>(4 * slices));
  for (index_t s = 0; s < slices; ++s) {
    acc[static_cast<std::size_t>(4 * s)] =
        std::numeric_limits<double>::infinity();
    acc[static_cast<std::size_t>(4 * s + 1)] =
        -std::numeric_limits<double>::infinity();
  }

  const Range mine = x.mode_range(n);
  const tensor::Tensor<T>& loc = x.local();
  if (loc.size() > 0) {
    for (index_t j = 0; j < tensor::unfolding_num_blocks(loc, n); ++j) {
      auto blk = tensor::unfolding_block(loc, n, j);
      for (index_t i = 0; i < blk.rows(); ++i) {
        const auto s = static_cast<std::size_t>(4 * (mine.lo + i));
        for (index_t c = 0; c < blk.cols(); ++c) {
          const double v = static_cast<double>(blk(i, c));
          acc[s] = std::min(acc[s], v);
          acc[s + 1] = std::max(acc[s + 1], v);
          acc[s + 2] += v;
          acc[s + 3] += v * v;
        }
      }
    }
  }

  // Combine: min and max need min/max reductions, sums need a sum; pack the
  // mins negated so one kMin pass would not suffice -- use three targeted
  // allreduces over contiguous strided copies instead.
  std::vector<double> mins(static_cast<std::size_t>(slices)),
      maxs(static_cast<std::size_t>(slices)),
      sums(static_cast<std::size_t>(2 * slices));
  for (index_t s = 0; s < slices; ++s) {
    mins[static_cast<std::size_t>(s)] = acc[static_cast<std::size_t>(4 * s)];
    maxs[static_cast<std::size_t>(s)] =
        acc[static_cast<std::size_t>(4 * s + 1)];
    sums[static_cast<std::size_t>(2 * s)] =
        acc[static_cast<std::size_t>(4 * s + 2)];
    sums[static_cast<std::size_t>(2 * s + 1)] =
        acc[static_cast<std::size_t>(4 * s + 3)];
  }
  x.world().allreduce(mins.data(), slices, mpi::Op::kMin);
  x.world().allreduce(maxs.data(), slices, mpi::Op::kMax);
  x.world().allreduce(sums.data(), 2 * slices, mpi::Op::kSum);

  double count = 1;
  for (std::size_t k = 0; k < x.order(); ++k)
    if (k != n) count *= static_cast<double>(x.global_dim(k));

  std::vector<tensor::SliceStats> stats(static_cast<std::size_t>(slices));
  for (index_t s = 0; s < slices; ++s) {
    auto& st = stats[static_cast<std::size_t>(s)];
    st.min = mins[static_cast<std::size_t>(s)];
    st.max = maxs[static_cast<std::size_t>(s)];
    if (count > 0) {
      st.mean = sums[static_cast<std::size_t>(2 * s)] / count;
      st.variance = std::max(
          0.0, sums[static_cast<std::size_t>(2 * s + 1)] / count -
                   st.mean * st.mean);
    }
  }
  return stats;
}

/// Normalizes the distributed tensor in place along mode n; the returned
/// transform is identical on every rank (statistics are allreduced).
template <class T>
tensor::SliceTransform par_normalize_slices(DistTensor<T>& x, std::size_t n,
                                            tensor::Normalization kind) {
  auto stats = par_slice_statistics(x, n);
  tensor::SliceTransform tr;
  tr.mode = n;
  tr.shift.resize(stats.size(), 0.0);
  tr.scale.resize(stats.size(), 1.0);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& st = stats[i];
    switch (kind) {
      case tensor::Normalization::kNone:
        break;
      case tensor::Normalization::kStandardCentering: {
        tr.shift[i] = st.mean;
        const double sd = st.stddev();
        tr.scale[i] = sd > 0 ? 1.0 / sd : 1.0;
        break;
      }
      case tensor::Normalization::kMinMax: {
        tr.shift[i] = st.min;
        const double spread = st.max - st.min;
        tr.scale[i] = spread > 0 ? 1.0 / spread : 1.0;
        break;
      }
      case tensor::Normalization::kMax: {
        const double amax = std::max(std::abs(st.min), std::abs(st.max));
        tr.scale[i] = amax > 0 ? 1.0 / amax : 1.0;
        break;
      }
    }
  }

  const Range mine = x.mode_range(n);
  tensor::Tensor<T>& loc = x.local();
  if (loc.size() > 0) {
    for (index_t j = 0; j < tensor::unfolding_num_blocks(loc, n); ++j) {
      auto blk = tensor::unfolding_block(loc, n, j);
      for (index_t i = 0; i < blk.rows(); ++i) {
        const auto s = static_cast<std::size_t>(mine.lo + i);
        const T shift = static_cast<T>(tr.shift[s]);
        const T scale = static_cast<T>(tr.scale[s]);
        for (index_t c = 0; c < blk.cols(); ++c)
          blk(i, c) = (blk(i, c) - shift) * scale;
      }
    }
  }
  return tr;
}

/// Undoes par_normalize_slices on a distributed tensor (e.g. a
/// reconstruction) with the same global mode-n extent.
template <class T>
void par_denormalize_slices(DistTensor<T>& x,
                            const tensor::SliceTransform& tr) {
  const std::size_t n = tr.mode;
  TUCKER_CHECK(static_cast<index_t>(tr.shift.size()) == x.global_dim(n),
               "par_denormalize_slices: transform size mismatch");
  const Range mine = x.mode_range(n);
  tensor::Tensor<T>& loc = x.local();
  if (loc.size() == 0) return;
  for (index_t j = 0; j < tensor::unfolding_num_blocks(loc, n); ++j) {
    auto blk = tensor::unfolding_block(loc, n, j);
    for (index_t i = 0; i < blk.rows(); ++i) {
      const auto s = static_cast<std::size_t>(mine.lo + i);
      const T shift = static_cast<T>(tr.shift[s]);
      const T inv = static_cast<T>(1.0 / tr.scale[s]);
      for (index_t c = 0; c < blk.cols(); ++c)
        blk(i, c) = blk(i, c) * inv + shift;
    }
  }
}

}  // namespace tucker::dist
