#pragma once
// Synthetic tensor generators.
//
// The paper's application datasets (HCCI and SP combustion simulations, the
// video tensor) are multi-terabyte or third-party; we substitute synthetic
// tensors whose per-mode singular spectra match the published shapes in
// Figs 5-7, which is the only property the experiments interrogate
// (compressibility per tolerance + where each algorithm/precision floors).
//
// Construction: a core tensor with independent N(0,1) entries scaled by a
// separable profile prod_n w_n(i_n), optionally rotated by random
// orthogonal factors in every mode. The mode-n spectrum then tracks w_n up
// to a mode-coherence factor, giving controllable decay shapes.

#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "common/rng.hpp"
#include "data/synthetic_matrix.hpp"
#include "tensor/tensor.hpp"
#include "tensor/ttm.hpp"

namespace tucker::data {

using tensor::Dims;
using tensor::Tensor;

/// Piecewise-geometric decay profile: knots are (fraction in [0,1], value)
/// pairs, interpolated geometrically; evaluated at i/(len-1).
struct DecayProfile {
  std::vector<std::pair<double, double>> knots;  // sorted by fraction

  static DecayProfile geometric(double first, double last) {
    return DecayProfile{{{0.0, first}, {1.0, last}}};
  }

  double at(double frac) const {
    TUCKER_CHECK(knots.size() >= 2, "DecayProfile: need at least two knots");
    if (frac <= knots.front().first) return knots.front().second;
    for (std::size_t k = 1; k < knots.size(); ++k) {
      if (frac <= knots[k].first) {
        const auto& [f0, v0] = knots[k - 1];
        const auto& [f1, v1] = knots[k];
        const double t = (frac - f0) / (f1 - f0);
        return v0 * std::pow(v1 / v0, t);
      }
    }
    return knots.back().second;
  }

  std::vector<double> sample(blas::index_t len) const {
    std::vector<double> w(static_cast<std::size_t>(len));
    for (blas::index_t i = 0; i < len; ++i)
      w[static_cast<std::size_t>(i)] =
          at(len == 1 ? 0.0 : static_cast<double>(i) /
                                  static_cast<double>(len - 1));
    return w;
  }
};

/// Tensor with independent standard-normal entries (the paper's synthetic
/// scaling workload: random tensors compressed with fixed ranks).
template <class T>
Tensor<T> random_tensor(const Dims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Tensor<T> t(dims);
  for (blas::index_t i = 0; i < t.size(); ++i)
    t.data()[i] = rng.normal<T>();
  return t;
}

/// Core tensor with entries n_{i} * prod_n w_n(i_n), n_i ~ N(0,1): the
/// per-mode spectra then decay like the profiles w_n.
inline Tensor<double> weighted_core(const Dims& dims,
                                    const std::vector<std::vector<double>>& w,
                                    std::uint64_t seed) {
  TUCKER_CHECK(w.size() == dims.size(), "weighted_core: one profile per mode");
  Rng rng(seed);
  Tensor<double> t(dims);
  const blas::index_t total = t.size();
  std::vector<blas::index_t> idx(dims.size(), 0);
  for (blas::index_t lin = 0; lin < total; ++lin) {
    double scale = 1;
    {
      blas::index_t rem = lin;
      for (std::size_t k = 0; k < dims.size(); ++k) {
        const blas::index_t ik = rem % dims[k];
        rem /= dims[k];
        scale *= w[k][static_cast<std::size_t>(ik)];
      }
    }
    t.data()[lin] = scale * rng.normal<double>();
  }
  return t;
}

/// Dense tensor whose mode-n singular spectrum follows profiles[n]:
/// weighted core rotated by a random orthogonal matrix in every mode.
/// Generated in double; round with round_tensor_to<T>() for single runs.
inline Tensor<double> tensor_with_spectra(
    const Dims& dims, const std::vector<DecayProfile>& profiles,
    std::uint64_t seed) {
  TUCKER_CHECK(profiles.size() == dims.size(),
               "tensor_with_spectra: one profile per mode");
  std::vector<std::vector<double>> w(dims.size());
  for (std::size_t n = 0; n < dims.size(); ++n)
    w[n] = profiles[n].sample(dims[n]);
  Tensor<double> t = weighted_core(dims, w, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    auto q = random_orthonormal(dims[n], dims[n], rng);
    t = tensor::ttm(t, n, blas::MatView<const double>(q.view()));
  }
  return t;
}

/// Converts a tensor between working precisions (e.g. generate in double,
/// round to float for the single-precision variants).
template <class To, class From>
Tensor<To> round_tensor_to(const Tensor<From>& x) {
  Tensor<To> out(x.dims());
  for (blas::index_t i = 0; i < x.size(); ++i)
    out.data()[i] = static_cast<To>(x.data()[i]);
  return out;
}

// ------------------------------------------------------- dataset stand-ins

/// HCCI-like combustion tensor (paper: 627 x 627 x 33 x 627). Spatial and
/// time modes decay steeply for a few leading values then slowly flatten
/// toward ~1e-9 (Fig 5's shape: compressible at loose tolerances, nearly
/// incompressible at 1e-8); the variables mode decays over ~5 orders.
/// `s` scales the default 126 x 126 x 11 x 126 size.
inline Tensor<double> hcci_like(double s = 1.0, std::uint64_t seed = 627) {
  const auto d = [&](double base) {
    return std::max<blas::index_t>(2, static_cast<blas::index_t>(base * s));
  };
  Dims dims = {d(126), d(126), d(11), d(126)};
  DecayProfile spatial{{{0.0, 1.0}, {0.15, 1e-4}, {0.6, 1e-7}, {1.0, 3e-9}}};
  DecayProfile vars{{{0.0, 1.0}, {0.5, 1e-3}, {1.0, 1e-6}}};
  DecayProfile time{{{0.0, 1.0}, {0.2, 1e-4}, {0.7, 1e-7}, {1.0, 3e-9}}};
  return tensor_with_spectra(dims, {spatial, spatial, vars, time}, seed);
}

/// SP-like combustion tensor (paper: 500 x 500 x 500 x 11 x 100), more
/// compressible than HCCI (Fig 6): steeper initial decay in the spatial
/// modes. Default scaled size 40 x 40 x 40 x 11 x 24.
inline Tensor<double> sp_like(double s = 1.0, std::uint64_t seed = 500) {
  const auto d = [&](double base) {
    return std::max<blas::index_t>(2, static_cast<blas::index_t>(base * s));
  };
  Dims dims = {d(40), d(40), d(40), d(11), d(24)};
  DecayProfile spatial{{{0.0, 1.0}, {0.1, 1e-5}, {0.5, 1e-8}, {1.0, 1e-10}}};
  DecayProfile vars{{{0.0, 1.0}, {0.5, 1e-4}, {1.0, 1e-8}}};
  DecayProfile time{{{0.0, 1.0}, {0.3, 1e-5}, {1.0, 1e-9}}};
  return tensor_with_spectra(dims, {spatial, spatial, spatial, vars, time},
                             seed);
}

/// Video-like tensor (paper: 1080 x 1920 x 3 x 2200). Fig 7's shape: two
/// orders of magnitude of fast decay in the long modes, then a long slow
/// tail -- very compressible at loose tolerances, hardly at tight ones.
/// Default scaled size 108 x 192 x 3 x 110.
inline Tensor<double> video_like(double s = 1.0, std::uint64_t seed = 1080) {
  const auto d = [&](double base) {
    return std::max<blas::index_t>(2, static_cast<blas::index_t>(base * s));
  };
  // The color mode stays at 3 regardless of scale (as in the real data).
  Dims dims = {d(108), d(192), 3, d(110)};
  // Plateau near ~2e-2 so moderate fixed ranks leave ~4% of the energy in
  // the tail -- reproducing the paper's 0.213 relative error regime.
  DecayProfile longmode{{{0.0, 1.0}, {0.05, 4e-2}, {1.0, 1.5e-2}}};
  DecayProfile color{{{0.0, 1.0}, {1.0, 2e-1}}};
  return tensor_with_spectra(dims, {longmode, longmode, color, longmode},
                             seed);
}

}  // namespace tucker::data
