#pragma once
// Synthetic matrix generators with prescribed singular spectra.
//
// Fig 1 of the paper evaluates the four (algorithm x precision) variants on
// an 80x80 matrix with geometrically decaying singular values from 1e0 to
// 1e-18 and random singular vectors. These helpers build such matrices:
// A = U * diag(sigma) * V^T with Haar-ish random orthonormal U, V obtained
// by QR of Gaussian matrices. Generation is always done in double and then
// rounded to the requested working precision, so all variants see "the
// same" matrix.

#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/matrix.hpp"
#include "common/rng.hpp"
#include "lapack/qr.hpp"

namespace tucker::data {

using blas::index_t;
using blas::Matrix;

/// m x n matrix of i.i.d. standard normals.
inline Matrix<double> gaussian_matrix(index_t m, index_t n, Rng& rng) {
  Matrix<double> a(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.normal<double>();
  return a;
}

/// m x k matrix with orthonormal columns (k <= m), Haar-distributed up to
/// sign conventions: Q factor of a Gaussian matrix.
inline Matrix<double> random_orthonormal(index_t m, index_t k, Rng& rng) {
  TUCKER_CHECK(k <= m, "random_orthonormal: need k <= m");
  Matrix<double> a = gaussian_matrix(m, k, rng);
  std::vector<double> tau;
  la::geqrf(a.view(), tau);
  return la::form_q(blas::MatView<const double>(a.view()), tau, k);
}

/// Geometric ladder of `k` values from `first` down to `last`.
inline std::vector<double> geometric_spectrum(index_t k, double first,
                                              double last) {
  TUCKER_CHECK(k >= 1 && first > 0 && last > 0, "geometric_spectrum: bad args");
  std::vector<double> s(static_cast<std::size_t>(k));
  if (k == 1) {
    s[0] = first;
    return s;
  }
  const double ratio = std::pow(last / first, 1.0 / static_cast<double>(k - 1));
  double v = first;
  for (index_t i = 0; i < k; ++i, v *= ratio) s[static_cast<std::size_t>(i)] = v;
  return s;
}

/// A = U diag(sigma) V^T with random orthonormal factors; sigma.size() must
/// be <= min(m, n) (remaining singular values are zero).
inline Matrix<double> matrix_with_spectrum(index_t m, index_t n,
                                           const std::vector<double>& sigma,
                                           std::uint64_t seed) {
  const auto k = static_cast<index_t>(sigma.size());
  TUCKER_CHECK(k <= std::min(m, n), "matrix_with_spectrum: too many values");
  Rng rng(seed);
  Matrix<double> u = random_orthonormal(m, k, rng);
  Matrix<double> v = random_orthonormal(n, k, rng);
  // us = U * diag(sigma)
  Matrix<double> us(m, k);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < k; ++j)
      us(i, j) = u(i, j) * sigma[static_cast<std::size_t>(j)];
  Matrix<double> a(m, n);
  blas::gemm(1.0, blas::MatView<const double>(us.view()),
             blas::MatView<const double>(v.view().t()), 0.0, a.view());
  return a;
}

/// Rounds a double matrix to working precision T.
template <class T>
Matrix<T> round_to(const Matrix<double>& a) {
  Matrix<T> out(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) out(i, j) = static_cast<T>(a(i, j));
  return out;
}

}  // namespace tucker::data
